type t = int64

let mask48 = 0xFFFF_FFFF_FFFFL
let of_int64 v = Int64.logand v mask48
let to_int64 t = t

let of_string s =
  match String.split_on_char ':' s with
  | [ a; b; c; d; e; f ] -> (
      try
        let parse x =
          if String.length x <> 2 then failwith "bad octet"
          else Int64.of_int (int_of_string ("0x" ^ x))
        in
        let acc =
          List.fold_left
            (fun acc o -> Int64.(logor (shift_left acc 8) (parse o)))
            0L [ a; b; c; d; e; f ]
        in
        Ok acc
      with _ -> Error (Printf.sprintf "Mac.of_string: bad address %S" s))
  | _ -> Error (Printf.sprintf "Mac.of_string: bad address %S" s)

let of_string_exn s =
  match of_string s with Ok t -> t | Error e -> invalid_arg e

let to_string t =
  let octet i = Int64.(to_int (logand (shift_right_logical t (8 * i)) 0xffL)) in
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x" (octet 5) (octet 4) (octet 3)
    (octet 2) (octet 1) (octet 0)

let broadcast = mask48
let zero = 0L
let is_multicast t = Int64.(logand (shift_right_logical t 40) 1L) = 1L
let equal = Int64.equal
let compare = Int64.compare
let pp ppf t = Format.pp_print_string ppf (to_string t)

let random st =
  let hi = Int64.of_int (Random.State.int st 0x1000000) in
  let lo = Int64.of_int (Random.State.int st 0x1000000) in
  let v = Int64.(logor (shift_left hi 24) lo) in
  (* Clear the multicast bit, set locally administered. *)
  Int64.(logor (logand v 0xFEFF_FFFF_FFFFL) 0x0200_0000_0000L)
