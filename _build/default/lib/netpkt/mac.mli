(** 48-bit Ethernet MAC addresses. *)

type t
(** A MAC address, stored as the low 48 bits of an int64. *)

val of_int64 : int64 -> t
(** Keeps the low 48 bits. *)

val to_int64 : t -> int64

val of_string : string -> (t, string) result
(** Parses ["aa:bb:cc:dd:ee:ff"]. *)

val of_string_exn : string -> t
val to_string : t -> string
val broadcast : t
val zero : t
val is_multicast : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val random : Random.State.t -> t
(** A random unicast, locally-administered address. *)
