type t = int64

let mask32 = 0xFFFF_FFFFL
let of_int64 v = Int64.logand v mask32
let to_int64 t = t

let of_octets a b c d =
  let byte x = Int64.of_int (x land 0xff) in
  Int64.(
    logor
      (logor (shift_left (byte a) 24) (shift_left (byte b) 16))
      (logor (shift_left (byte c) 8) (byte d)))

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      try
        let oct x =
          let v = int_of_string x in
          if v < 0 || v > 255 then failwith "octet" else v
        in
        Ok (of_octets (oct a) (oct b) (oct c) (oct d))
      with _ -> Error (Printf.sprintf "Ip4.of_string: bad address %S" s))
  | _ -> Error (Printf.sprintf "Ip4.of_string: bad address %S" s)

let of_string_exn s =
  match of_string s with Ok t -> t | Error e -> invalid_arg e

let to_string t =
  let octet i = Int64.(to_int (logand (shift_right_logical t (8 * i)) 0xffL)) in
  Printf.sprintf "%d.%d.%d.%d" (octet 3) (octet 2) (octet 1) (octet 0)

let equal = Int64.equal
let compare = Int64.compare
let pp ppf t = Format.pp_print_string ppf (to_string t)

let random st =
  Int64.logand (Random.State.int64 st Int64.max_int) mask32

type prefix = { addr : t; len : int }

let prefix_mask len =
  if len = 0 then 0L
  else Int64.logand (Int64.shift_left mask32 (32 - len)) mask32

let prefix addr len =
  if len < 0 || len > 32 then invalid_arg "Ip4.prefix: length not in 0..32";
  { addr = Int64.logand addr (prefix_mask len); len }

let prefix_of_string s =
  match String.split_on_char '/' s with
  | [ a; l ] -> (
      match (of_string a, int_of_string_opt l) with
      | Ok addr, Some len when len >= 0 && len <= 32 -> Ok (prefix addr len)
      | _ -> Error (Printf.sprintf "Ip4.prefix_of_string: bad prefix %S" s))
  | [ a ] -> Result.map (fun addr -> prefix addr 32) (of_string a)
  | _ -> Error (Printf.sprintf "Ip4.prefix_of_string: bad prefix %S" s)

let prefix_of_string_exn s =
  match prefix_of_string s with Ok p -> p | Error e -> invalid_arg e

let prefix_to_string p = Printf.sprintf "%s/%d" (to_string p.addr) p.len
let matches p t = Int64.equal (Int64.logand t (prefix_mask p.len)) p.addr
let pp_prefix ppf p = Format.pp_print_string ppf (prefix_to_string p)
