type op = Request | Reply

type t = {
  op : op;
  sender_mac : Mac.t;
  sender_ip : Ip4.t;
  target_mac : Mac.t;
  target_ip : Ip4.t;
}

let size = 28
let op_to_int = function Request -> 1 | Reply -> 2

let encode_into t b ~off =
  Bytes_util.set_uint16 b off 1;
  Bytes_util.set_uint16 b (off + 2) Eth.ethertype_ipv4;
  Bytes_util.set_uint8 b (off + 4) 6;
  Bytes_util.set_uint8 b (off + 5) 4;
  Bytes_util.set_uint16 b (off + 6) (op_to_int t.op);
  Bytes_util.set_bits b ~bit_off:(8 * (off + 8)) ~width:48
    (Mac.to_int64 t.sender_mac);
  Bytes_util.set_uint32 b (off + 14) (Ip4.to_int64 t.sender_ip);
  Bytes_util.set_bits b ~bit_off:(8 * (off + 18)) ~width:48
    (Mac.to_int64 t.target_mac);
  Bytes_util.set_uint32 b (off + 24) (Ip4.to_int64 t.target_ip)

let decode b ~off =
  if Bytes.length b < off + size then Error "Arp.decode: truncated"
  else
    match Bytes_util.get_uint16 b (off + 6) with
    | (1 | 2) as opcode ->
        Ok
          {
            op = (if opcode = 1 then Request else Reply);
            sender_mac =
              Mac.of_int64 (Bytes_util.get_bits b ~bit_off:(8 * (off + 8)) ~width:48);
            sender_ip = Ip4.of_int64 (Bytes_util.get_uint32 b (off + 14));
            target_mac =
              Mac.of_int64
                (Bytes_util.get_bits b ~bit_off:(8 * (off + 18)) ~width:48);
            target_ip = Ip4.of_int64 (Bytes_util.get_uint32 b (off + 24));
          }
    | n -> Error (Printf.sprintf "Arp.decode: unsupported opcode %d" n)

let equal a b =
  a.op = b.op
  && Mac.equal a.sender_mac b.sender_mac
  && Ip4.equal a.sender_ip b.sender_ip
  && Mac.equal a.target_mac b.target_mac
  && Ip4.equal a.target_ip b.target_ip

let pp ppf t =
  Format.fprintf ppf "arp{%s %a -> %a}"
    (match t.op with Request -> "who-has" | Reply -> "is-at")
    Ip4.pp t.sender_ip Ip4.pp t.target_ip
