type t = {
  src_port : int;
  dst_port : int;
  seq : int64;
  ack : int64;
  flags : int;
  window : int;
  checksum : int;
  urgent : int;
}

let size = 20
let flag_fin = 0x01
let flag_syn = 0x02
let flag_rst = 0x04
let flag_psh = 0x08
let flag_ack = 0x10

let make ?(seq = 0L) ?(ack = 0L) ?(flags = flag_ack) ?(window = 65535)
    ~src_port ~dst_port () =
  { src_port; dst_port; seq; ack; flags; window; checksum = 0; urgent = 0 }

let encode_into t b ~off =
  Bytes_util.set_uint16 b off t.src_port;
  Bytes_util.set_uint16 b (off + 2) t.dst_port;
  Bytes_util.set_uint32 b (off + 4) t.seq;
  Bytes_util.set_uint32 b (off + 8) t.ack;
  (* data offset = 5 words, then the 9 flag bits. *)
  Bytes_util.set_uint16 b (off + 12) ((5 lsl 12) lor (t.flags land 0x1ff));
  Bytes_util.set_uint16 b (off + 14) t.window;
  Bytes_util.set_uint16 b (off + 16) t.checksum;
  Bytes_util.set_uint16 b (off + 18) t.urgent

let decode b ~off =
  if Bytes.length b < off + size then Error "Tcp.decode: truncated"
  else
    let off_flags = Bytes_util.get_uint16 b (off + 12) in
    Ok
      {
        src_port = Bytes_util.get_uint16 b off;
        dst_port = Bytes_util.get_uint16 b (off + 2);
        seq = Bytes_util.get_uint32 b (off + 4);
        ack = Bytes_util.get_uint32 b (off + 8);
        flags = off_flags land 0x1ff;
        window = Bytes_util.get_uint16 b (off + 14);
        checksum = Bytes_util.get_uint16 b (off + 16);
        urgent = Bytes_util.get_uint16 b (off + 18);
      }

let equal a b =
  a.src_port = b.src_port && a.dst_port = b.dst_port && a.seq = b.seq
  && a.ack = b.ack && a.flags = b.flags && a.window = b.window
  && a.urgent = b.urgent

let pp ppf t =
  Format.fprintf ppf "tcp{%d -> %d seq=%Ld flags=0x%x}" t.src_port t.dst_port
    t.seq t.flags
