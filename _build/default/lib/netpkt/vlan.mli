(** 802.1Q VLAN tag codec (the 4 bytes following the Ethernet addresses). *)

type t = { pcp : int; dei : int; vid : int; ethertype : int }

val size : int
(** 4 bytes. *)

val make : ?pcp:int -> ?dei:int -> vid:int -> int -> t
val encode_into : t -> Bytes.t -> off:int -> unit
val decode : Bytes.t -> off:int -> (t, string) result
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
