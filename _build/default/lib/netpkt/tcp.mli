(** TCP header codec (20-byte header, options unsupported). *)

type t = {
  src_port : int;
  dst_port : int;
  seq : int64;
  ack : int64;
  flags : int;  (** low 9 bits: NS CWR ECE URG ACK PSH RST SYN FIN. *)
  window : int;
  checksum : int;
  urgent : int;
}

val size : int
val flag_fin : int
val flag_syn : int
val flag_rst : int
val flag_psh : int
val flag_ack : int

val make :
  ?seq:int64 ->
  ?ack:int64 ->
  ?flags:int ->
  ?window:int ->
  src_port:int ->
  dst_port:int ->
  unit ->
  t

val encode_into : t -> Bytes.t -> off:int -> unit
val decode : Bytes.t -> off:int -> (t, string) result
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
