let check_range b ~bit_off ~width =
  if width < 1 || width > 64 then
    invalid_arg (Printf.sprintf "Bytes_util: width %d not in 1..64" width);
  if bit_off < 0 || bit_off + width > 8 * Bytes.length b then
    invalid_arg
      (Printf.sprintf "Bytes_util: bit range [%d,%d) exceeds %d bytes" bit_off
         (bit_off + width) (Bytes.length b))

let get_bit b i =
  let byte = Char.code (Bytes.get b (i / 8)) in
  (byte lsr (7 - (i mod 8))) land 1

let set_bit b i v =
  let idx = i / 8 in
  let byte = Char.code (Bytes.get b idx) in
  let mask = 1 lsl (7 - (i mod 8)) in
  let byte = if v = 1 then byte lor mask else byte land lnot mask in
  Bytes.set b idx (Char.chr byte)

let get_bits b ~bit_off ~width =
  check_range b ~bit_off ~width;
  let rec loop acc i =
    if i = width then acc
    else
      let bit = Int64.of_int (get_bit b (bit_off + i)) in
      loop Int64.(logor (shift_left acc 1) bit) (i + 1)
  in
  loop 0L 0

let set_bits b ~bit_off ~width v =
  check_range b ~bit_off ~width;
  for i = 0 to width - 1 do
    let bit = Int64.(to_int (logand (shift_right_logical v (width - 1 - i)) 1L)) in
    set_bit b (bit_off + i) bit
  done

let get_uint8 b off = Char.code (Bytes.get b off)
let set_uint8 b off v = Bytes.set b off (Char.chr (v land 0xff))

let get_uint16 b off = (get_uint8 b off lsl 8) lor get_uint8 b (off + 1)

let set_uint16 b off v =
  set_uint8 b off ((v lsr 8) land 0xff);
  set_uint8 b (off + 1) (v land 0xff)

let get_uint32 b off = get_bits b ~bit_off:(8 * off) ~width:32
let set_uint32 b off v = set_bits b ~bit_off:(8 * off) ~width:32 v

let internet_checksum b ~off ~len =
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < len do
    sum := !sum + get_uint16 b (off + !i);
    i := !i + 2
  done;
  if len land 1 = 1 then sum := !sum + (get_uint8 b (off + len - 1) lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xffff) + (!sum lsr 16)
  done;
  lnot !sum land 0xffff

let crc32_table =
  lazy
    (let t = Array.make 256 0L in
     for n = 0 to 255 do
       let c = ref (Int64.of_int n) in
       for _ = 0 to 7 do
         c :=
           if Int64.(logand !c 1L) = 1L then
             Int64.(logxor 0xEDB88320L (shift_right_logical !c 1))
           else Int64.shift_right_logical !c 1
       done;
       t.(n) <- !c
     done;
     t)

let crc32 ?(init = 0xFFFFFFFFL) b ~off ~len =
  let table = Lazy.force crc32_table in
  let c = ref init in
  for i = off to off + len - 1 do
    let idx = Int64.(to_int (logand (logxor !c (of_int (get_uint8 b i))) 0xffL)) in
    c := Int64.(logxor table.(idx) (shift_right_logical !c 8))
  done;
  Int64.logand (Int64.logxor !c 0xFFFFFFFFL) 0xFFFFFFFFL

let crc16 b ~off ~len =
  let c = ref 0L in
  for i = off to off + len - 1 do
    c := Int64.logxor !c (Int64.of_int (get_uint8 b i));
    for _ = 0 to 7 do
      c :=
        if Int64.(logand !c 1L) = 1L then
          Int64.(logxor 0xA001L (shift_right_logical !c 1))
        else Int64.shift_right_logical !c 1
    done
  done;
  Int64.logand !c 0xFFFFL

let pp_hex ppf b =
  let n = Bytes.length b in
  for i = 0 to n - 1 do
    if i > 0 && i mod 16 = 0 then Format.fprintf ppf "@\n";
    Format.fprintf ppf "%02x " (get_uint8 b i)
  done

let equal_range a b ~off ~len =
  Bytes.length a >= off + len
  && Bytes.length b >= off + len
  &&
  let rec loop i =
    i = len || (Bytes.get a (off + i) = Bytes.get b (off + i) && loop (i + 1))
  in
  loop 0
