type t = { dst : Mac.t; src : Mac.t; ethertype : int }

let size = 14
let ethertype_ipv4 = 0x0800
let ethertype_arp = 0x0806
let ethertype_vlan = 0x8100
let ethertype_sfc = 0x894F

let make ?(dst = Mac.zero) ?(src = Mac.zero) ethertype = { dst; src; ethertype }

let encode_into t b ~off =
  Bytes_util.set_bits b ~bit_off:(8 * off) ~width:48 (Mac.to_int64 t.dst);
  Bytes_util.set_bits b ~bit_off:(8 * (off + 6)) ~width:48 (Mac.to_int64 t.src);
  Bytes_util.set_uint16 b (off + 12) t.ethertype

let decode b ~off =
  if Bytes.length b < off + size then Error "Eth.decode: truncated"
  else
    Ok
      {
        dst = Mac.of_int64 (Bytes_util.get_bits b ~bit_off:(8 * off) ~width:48);
        src =
          Mac.of_int64 (Bytes_util.get_bits b ~bit_off:(8 * (off + 6)) ~width:48);
        ethertype = Bytes_util.get_uint16 b (off + 12);
      }

let equal a b =
  Mac.equal a.dst b.dst && Mac.equal a.src b.src && a.ethertype = b.ethertype

let pp ppf t =
  Format.fprintf ppf "eth{dst=%a src=%a type=0x%04x}" Mac.pp t.dst Mac.pp t.src
    t.ethertype
