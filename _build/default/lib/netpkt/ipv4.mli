(** IPv4 header codec (20-byte header; options unsupported by the ASIC
    parser model, so [ihl] is fixed at 5). *)

type t = {
  dscp : int;
  ecn : int;
  total_length : int;
  ident : int;
  flags : int;
  frag_offset : int;
  ttl : int;
  protocol : int;
  checksum : int;  (** 0 means "fill in at encode time". *)
  src : Ip4.t;
  dst : Ip4.t;
}

val size : int
(** 20 bytes. *)

val proto_icmp : int
val proto_tcp : int
val proto_udp : int

val make :
  ?dscp:int ->
  ?ecn:int ->
  ?ident:int ->
  ?flags:int ->
  ?frag_offset:int ->
  ?ttl:int ->
  ?total_length:int ->
  protocol:int ->
  src:Ip4.t ->
  dst:Ip4.t ->
  unit ->
  t

val encode_into : t -> Bytes.t -> off:int -> unit
(** Writes the header; when [t.checksum] is 0 the correct header checksum
    is computed and written. *)

val decode : Bytes.t -> off:int -> (t, string) result
val checksum_valid : Bytes.t -> off:int -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
