type packet = { ts_sec : int; ts_usec : int; frame : Bytes.t }

let packet ?(ts_sec = 0) ?(ts_usec = 0) frame = { ts_sec; ts_usec; frame }

let snaplen = 65535
let magic = 0xA1B2C3D4
let linktype_ethernet = 1

let set_u32le b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get_u32le b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let set_u16le b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff))

let to_bytes packets =
  let body_len =
    List.fold_left
      (fun acc p -> acc + 16 + min snaplen (Bytes.length p.frame))
      0 packets
  in
  let out = Bytes.make (24 + body_len) '\000' in
  set_u32le out 0 magic;
  set_u16le out 4 2 (* major *);
  set_u16le out 6 4 (* minor *);
  (* thiszone, sigfigs stay zero *)
  set_u32le out 16 snaplen;
  set_u32le out 20 linktype_ethernet;
  let off = ref 24 in
  List.iter
    (fun p ->
      let cap = min snaplen (Bytes.length p.frame) in
      set_u32le out !off p.ts_sec;
      set_u32le out (!off + 4) p.ts_usec;
      set_u32le out (!off + 8) cap;
      set_u32le out (!off + 12) (Bytes.length p.frame);
      Bytes.blit p.frame 0 out (!off + 16) cap;
      off := !off + 16 + cap)
    packets;
  out

let of_bytes b =
  if Bytes.length b < 24 then Error "Pcap.of_bytes: truncated header"
  else if get_u32le b 0 <> magic then
    Error "Pcap.of_bytes: not a little-endian microsecond capture"
  else begin
    let rec records off acc =
      if off = Bytes.length b then Ok (List.rev acc)
      else if off + 16 > Bytes.length b then
        Error "Pcap.of_bytes: truncated record header"
      else
        let cap = get_u32le b (off + 8) in
        if off + 16 + cap > Bytes.length b then
          Error "Pcap.of_bytes: truncated record body"
        else
          records (off + 16 + cap)
            ({
               ts_sec = get_u32le b off;
               ts_usec = get_u32le b (off + 4);
               frame = Bytes.sub b (off + 16) cap;
             }
            :: acc)
    in
    records 24 []
  end

let write_file path packets =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (to_bytes packets))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      of_bytes b)
