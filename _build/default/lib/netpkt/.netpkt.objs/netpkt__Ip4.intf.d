lib/netpkt/ip4.mli: Format Random
