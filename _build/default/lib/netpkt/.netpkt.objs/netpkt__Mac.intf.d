lib/netpkt/mac.mli: Format Random
