lib/netpkt/udp.mli: Bytes Format
