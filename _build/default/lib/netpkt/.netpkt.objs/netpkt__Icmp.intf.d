lib/netpkt/icmp.mli: Bytes Format
