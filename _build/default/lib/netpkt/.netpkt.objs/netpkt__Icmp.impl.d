lib/netpkt/icmp.ml: Bytes Bytes_util Format
