lib/netpkt/bytes_util.mli: Bytes Format
