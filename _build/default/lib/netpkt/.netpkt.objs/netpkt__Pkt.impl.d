lib/netpkt/pkt.ml: Arp Bytes Bytes_util Eth Flow Format Icmp Ipv4 List Option Result String Tcp Udp Vlan Vxlan
