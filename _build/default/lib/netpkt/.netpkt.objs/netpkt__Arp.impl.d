lib/netpkt/arp.ml: Bytes Bytes_util Eth Format Ip4 Mac Printf
