lib/netpkt/tcp.mli: Bytes Format
