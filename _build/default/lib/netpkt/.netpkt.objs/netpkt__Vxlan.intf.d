lib/netpkt/vxlan.mli: Bytes Format
