lib/netpkt/bytes_util.ml: Array Bytes Char Format Int64 Lazy Printf
