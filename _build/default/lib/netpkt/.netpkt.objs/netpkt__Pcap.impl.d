lib/netpkt/pcap.ml: Bytes Char Fun List
