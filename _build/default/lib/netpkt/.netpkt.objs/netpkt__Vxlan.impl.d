lib/netpkt/vxlan.ml: Bytes Bytes_util Format Int64
