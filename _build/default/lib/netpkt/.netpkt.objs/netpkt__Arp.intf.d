lib/netpkt/arp.mli: Bytes Format Ip4 Mac
