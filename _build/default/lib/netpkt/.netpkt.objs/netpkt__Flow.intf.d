lib/netpkt/flow.mli: Format Ip4 Random
