lib/netpkt/pcap.mli: Bytes
