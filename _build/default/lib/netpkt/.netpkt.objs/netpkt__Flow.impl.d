lib/netpkt/flow.ml: Bytes Bytes_util Format Int64 Ip4 Ipv4 List Random Set
