lib/netpkt/pkt.mli: Arp Bytes Eth Flow Format Icmp Ipv4 Mac Tcp Udp Vlan Vxlan
