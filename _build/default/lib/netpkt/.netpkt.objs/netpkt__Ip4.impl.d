lib/netpkt/ip4.ml: Format Int64 Printf Random Result String
