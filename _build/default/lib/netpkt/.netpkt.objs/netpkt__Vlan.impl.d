lib/netpkt/vlan.ml: Bytes Bytes_util Format
