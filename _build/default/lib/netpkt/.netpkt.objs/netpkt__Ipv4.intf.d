lib/netpkt/ipv4.mli: Bytes Format Ip4
