lib/netpkt/mac.ml: Format Int64 List Printf Random String
