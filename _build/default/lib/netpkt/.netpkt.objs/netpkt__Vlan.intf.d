lib/netpkt/vlan.mli: Bytes Format
