lib/netpkt/eth.mli: Bytes Format Mac
