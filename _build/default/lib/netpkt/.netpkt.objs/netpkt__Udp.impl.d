lib/netpkt/udp.ml: Bytes Bytes_util Format
