lib/netpkt/tcp.ml: Bytes Bytes_util Format
