lib/netpkt/eth.ml: Bytes Bytes_util Format Mac
