lib/netpkt/ipv4.ml: Bytes Bytes_util Format Ip4
