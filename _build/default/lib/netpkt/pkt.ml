type layer =
  | Eth of Eth.t
  | Vlan of Vlan.t
  | Sfc_raw of Bytes.t
  | Arp of Arp.t
  | Ipv4 of Ipv4.t
  | Tcp of Tcp.t
  | Udp of Udp.t
  | Icmp of Icmp.t
  | Vxlan of Vxlan.t
  | Payload of string

type t = layer list

let sfc_size = 20

let layer_size = function
  | Eth _ -> Eth.size
  | Vlan _ -> Vlan.size
  | Sfc_raw b -> Bytes.length b
  | Arp _ -> Arp.size
  | Ipv4 _ -> Ipv4.size
  | Tcp _ -> Tcp.size
  | Udp _ -> Udp.size
  | Icmp _ -> Icmp.size
  | Vxlan _ -> Vxlan.size
  | Payload s -> String.length s

let encode layers =
  let total = List.fold_left (fun acc l -> acc + layer_size l) 0 layers in
  let b = Bytes.make total '\000' in
  (* Fix up length fields to cover everything below each layer. *)
  let rec fixup = function
    | [] -> []
    | layer :: rest ->
        let rest = fixup rest in
        let below = List.fold_left (fun acc l -> acc + layer_size l) 0 rest in
        let layer =
          match layer with
          | Ipv4 h -> Ipv4 { h with total_length = Ipv4.size + below }
          | Udp h -> Udp { h with length = Udp.size + below }
          | other -> other
        in
        layer :: rest
  in
  let layers = fixup layers in
  let off = ref 0 in
  List.iter
    (fun layer ->
      (match layer with
      | Eth h -> Eth.encode_into h b ~off:!off
      | Vlan h -> Vlan.encode_into h b ~off:!off
      | Sfc_raw raw -> Bytes.blit raw 0 b !off (Bytes.length raw)
      | Arp h -> Arp.encode_into h b ~off:!off
      | Ipv4 h -> Ipv4.encode_into h b ~off:!off
      | Tcp h -> Tcp.encode_into h b ~off:!off
      | Udp h -> Udp.encode_into h b ~off:!off
      | Icmp h -> Icmp.encode_into h b ~off:!off
      | Vxlan h -> Vxlan.encode_into h b ~off:!off
      | Payload s -> Bytes.blit_string s 0 b !off (String.length s));
      off := !off + layer_size layer)
    layers;
  b

let ( let* ) = Result.bind

let payload_rest b off =
  if off >= Bytes.length b then []
  else [ Payload (Bytes.sub_string b off (Bytes.length b - off)) ]

let rec decode_ethertype b off ethertype =
  if ethertype = Eth.ethertype_vlan then
    let* h = Vlan.decode b ~off in
    let* rest = decode_ethertype b (off + Vlan.size) h.Vlan.ethertype in
    Ok (Vlan h :: rest)
  else if ethertype = Eth.ethertype_sfc then
    if Bytes.length b < off + sfc_size then Error "Pkt.decode: truncated SFC"
    else
      let raw = Bytes.sub b off sfc_size in
      (* Byte 19 of the SFC header is the next-protocol discriminator:
         1 = IPv4, 2 = 802.1Q. *)
      let next = Bytes_util.get_uint8 raw 19 in
      let* rest =
        if next = 1 then decode_ethertype b (off + sfc_size) Eth.ethertype_ipv4
        else if next = 2 then
          decode_ethertype b (off + sfc_size) Eth.ethertype_vlan
        else Ok (payload_rest b (off + sfc_size))
      in
      Ok (Sfc_raw raw :: rest)
  else if ethertype = Eth.ethertype_arp then
    let* h = Arp.decode b ~off in
    Ok [ Arp h ]
  else if ethertype = Eth.ethertype_ipv4 then
    let* h = Ipv4.decode b ~off in
    let* rest = decode_proto b (off + Ipv4.size) h.Ipv4.protocol in
    Ok (Ipv4 h :: rest)
  else Ok (payload_rest b off)

and decode_proto b off proto =
  if proto = Ipv4.proto_tcp then
    let* h = Tcp.decode b ~off in
    Ok (Tcp h :: payload_rest b (off + Tcp.size))
  else if proto = Ipv4.proto_udp then
    let* h = Udp.decode b ~off in
    if h.Udp.dst_port = Udp.port_vxlan then
      let* v = Vxlan.decode b ~off:(off + Udp.size) in
      let* inner = decode b ~off:(off + Udp.size + Vxlan.size) in
      Ok (Udp h :: Vxlan v :: inner)
    else Ok (Udp h :: payload_rest b (off + Udp.size))
  else if proto = Ipv4.proto_icmp then
    let* h = Icmp.decode b ~off in
    Ok (Icmp h :: payload_rest b (off + Icmp.size))
  else Ok (payload_rest b off)

and decode b ~off =
  let* eth = Eth.decode b ~off in
  let* rest = decode_ethertype b (off + Eth.size) eth.Eth.ethertype in
  Ok (Eth eth :: rest)

let decode b = decode b ~off:0

let tcp_flow ?(payload = "") ~src_mac ~dst_mac (ft : Flow.five_tuple) =
  let l4 =
    if ft.Flow.proto = Ipv4.proto_tcp then
      Tcp (Tcp.make ~src_port:ft.Flow.src_port ~dst_port:ft.Flow.dst_port ())
    else Udp (Udp.make ~src_port:ft.Flow.src_port ~dst_port:ft.Flow.dst_port ())
  in
  [
    Eth (Eth.make ~dst:dst_mac ~src:src_mac Eth.ethertype_ipv4);
    Ipv4 (Ipv4.make ~protocol:ft.Flow.proto ~src:ft.Flow.src ~dst:ft.Flow.dst ());
    l4;
  ]
  @ if payload = "" then [] else [ Payload payload ]

let find_ipv4 t =
  List.find_map (function Ipv4 h -> Some h | _ -> None) t

let find_eth t = List.find_map (function Eth h -> Some h | _ -> None) t

let five_tuple_of t =
  match find_ipv4 t with
  | None -> None
  | Some ip ->
      let ports =
        List.find_map
          (function
            | Tcp h -> Some (h.Tcp.src_port, h.Tcp.dst_port)
            | Udp h -> Some (h.Udp.src_port, h.Udp.dst_port)
            | _ -> None)
          t
      in
      Option.map
        (fun (sp, dp) ->
          {
            Flow.src = ip.Ipv4.src;
            dst = ip.Ipv4.dst;
            proto = ip.Ipv4.protocol;
            src_port = sp;
            dst_port = dp;
          })
        ports

let equal_layer a b =
  match (a, b) with
  | Eth x, Eth y -> Eth.equal x y
  | Vlan x, Vlan y -> Vlan.equal x y
  | Sfc_raw x, Sfc_raw y -> Bytes.equal x y
  | Arp x, Arp y -> Arp.equal x y
  | Ipv4 x, Ipv4 y -> Ipv4.equal x y
  | Tcp x, Tcp y -> Tcp.equal x y
  | Udp x, Udp y -> Udp.equal x y
  | Icmp x, Icmp y -> Icmp.equal x y
  | Vxlan x, Vxlan y -> Vxlan.equal x y
  | Payload x, Payload y -> String.equal x y
  | ( (Eth _ | Vlan _ | Sfc_raw _ | Arp _ | Ipv4 _ | Tcp _ | Udp _ | Icmp _
      | Vxlan _ | Payload _),
      _ ) ->
      false

let equal a b = List.length a = List.length b && List.for_all2 equal_layer a b

let pp_layer ppf = function
  | Eth h -> Eth.pp ppf h
  | Vlan h -> Vlan.pp ppf h
  | Sfc_raw b -> Format.fprintf ppf "sfc{%d bytes}" (Bytes.length b)
  | Arp h -> Arp.pp ppf h
  | Ipv4 h -> Ipv4.pp ppf h
  | Tcp h -> Tcp.pp ppf h
  | Udp h -> Udp.pp ppf h
  | Icmp h -> Icmp.pp ppf h
  | Vxlan h -> Vxlan.pp ppf h
  | Payload s -> Format.fprintf ppf "payload{%d bytes}" (String.length s)

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " / ")
    pp_layer ppf t
