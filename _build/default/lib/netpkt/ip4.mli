(** IPv4 addresses and prefixes. *)

type t
(** An IPv4 address (32 bits, unsigned). *)

val of_int64 : int64 -> t
val to_int64 : t -> int64
val of_octets : int -> int -> int -> int -> t
val of_string : string -> (t, string) result
val of_string_exn : string -> t
val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val random : Random.State.t -> t

type prefix = { addr : t; len : int }
(** A CIDR prefix; [len] in 0..32. Host bits of [addr] are cleared. *)

val prefix : t -> int -> prefix
val prefix_of_string : string -> (prefix, string) result
val prefix_of_string_exn : string -> prefix
val prefix_to_string : prefix -> string
val matches : prefix -> t -> bool
val prefix_mask : int -> int64
val pp_prefix : Format.formatter -> prefix -> unit
