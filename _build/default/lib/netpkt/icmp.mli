(** ICMP echo header codec (type/code/checksum + id/seq). *)

type t = { typ : int; code : int; ident : int; seq : int }

val size : int
(** 8 bytes. *)

val echo_request : ident:int -> seq:int -> t
val echo_reply : ident:int -> seq:int -> t
val encode_into : t -> Bytes.t -> off:int -> unit
val decode : Bytes.t -> off:int -> (t, string) result
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
