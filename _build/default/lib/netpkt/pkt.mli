(** Layered packets: building and parsing full frames from the codecs.

    The SFC header itself is owned by the Dejavu core library (it is the
    paper's contribution); at this layer it appears as an opaque
    [Sfc_raw] blob delimited by {!Eth.ethertype_sfc}. *)

type layer =
  | Eth of Eth.t
  | Vlan of Vlan.t
  | Sfc_raw of Bytes.t  (** the 20-byte Dejavu SFC header, undecoded *)
  | Arp of Arp.t
  | Ipv4 of Ipv4.t
  | Tcp of Tcp.t
  | Udp of Udp.t
  | Icmp of Icmp.t
  | Vxlan of Vxlan.t
  | Payload of string

type t = layer list

val encode : t -> Bytes.t
(** Serializes the layers back to back. IPv4 [total_length] and UDP
    [length] are recomputed to cover everything that follows them, and the
    IPv4 checksum is filled in. *)

val decode : Bytes.t -> (t, string) result
(** Parses a frame starting at Ethernet. Unknown ethertypes/protocols end
    with a [Payload] of the remaining bytes. *)

val tcp_flow :
  ?payload:string -> src_mac:Mac.t -> dst_mac:Mac.t -> Flow.five_tuple -> t
(** A minimal Eth/IPv4/(TCP|UDP) frame for the given 5-tuple. *)

val five_tuple_of : t -> Flow.five_tuple option
val find_ipv4 : t -> Ipv4.t option
val find_eth : t -> Eth.t option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_layer : Format.formatter -> layer -> unit
