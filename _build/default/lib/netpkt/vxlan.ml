type t = { flags : int; vni : int }

let size = 8

let make vni =
  if vni < 0 || vni > 0xFFFFFF then invalid_arg "Vxlan.make: vni not 24-bit";
  { flags = 0x08; vni }

let encode_into t b ~off =
  Bytes_util.set_uint8 b off t.flags;
  Bytes_util.set_uint8 b (off + 1) 0;
  Bytes_util.set_uint16 b (off + 2) 0;
  Bytes_util.set_bits b ~bit_off:(8 * (off + 4)) ~width:24 (Int64.of_int t.vni);
  Bytes_util.set_uint8 b (off + 7) 0

let decode b ~off =
  if Bytes.length b < off + size then Error "Vxlan.decode: truncated"
  else
    Ok
      {
        flags = Bytes_util.get_uint8 b off;
        vni =
          Int64.to_int (Bytes_util.get_bits b ~bit_off:(8 * (off + 4)) ~width:24);
      }

let equal a b = a.flags = b.flags && a.vni = b.vni
let pp ppf t = Format.fprintf ppf "vxlan{vni=%d}" t.vni
