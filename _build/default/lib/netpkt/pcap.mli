(** Classic libpcap capture files (the pre-pcapng format every tool
    reads): dump the frames a simulation emits and open them in
    wireshark/tcpdump. Little-endian, microsecond timestamps,
    LINKTYPE_ETHERNET. *)

type packet = { ts_sec : int; ts_usec : int; frame : Bytes.t }

val packet : ?ts_sec:int -> ?ts_usec:int -> Bytes.t -> packet

val to_bytes : packet list -> Bytes.t
(** A complete capture: global header + records. *)

val of_bytes : Bytes.t -> (packet list, string) result
(** Parses little-endian microsecond captures (the ones [to_bytes]
    writes). *)

val write_file : string -> packet list -> unit
val read_file : string -> (packet list, string) result

val snaplen : int
(** 65535. Frames longer than this are truncated on write (with the
    original length recorded, as pcap specifies). *)
