type t = { pcp : int; dei : int; vid : int; ethertype : int }

let size = 4

let make ?(pcp = 0) ?(dei = 0) ~vid ethertype =
  if vid < 0 || vid > 4095 then invalid_arg "Vlan.make: vid not in 0..4095";
  { pcp = pcp land 7; dei = dei land 1; vid; ethertype }

let encode_into t b ~off =
  let tci = (t.pcp lsl 13) lor (t.dei lsl 12) lor t.vid in
  Bytes_util.set_uint16 b off tci;
  Bytes_util.set_uint16 b (off + 2) t.ethertype

let decode b ~off =
  if Bytes.length b < off + size then Error "Vlan.decode: truncated"
  else
    let tci = Bytes_util.get_uint16 b off in
    Ok
      {
        pcp = tci lsr 13;
        dei = (tci lsr 12) land 1;
        vid = tci land 0xfff;
        ethertype = Bytes_util.get_uint16 b (off + 2);
      }

let equal a b =
  a.pcp = b.pcp && a.dei = b.dei && a.vid = b.vid && a.ethertype = b.ethertype

let pp ppf t =
  Format.fprintf ppf "vlan{vid=%d pcp=%d type=0x%04x}" t.vid t.pcp t.ethertype
