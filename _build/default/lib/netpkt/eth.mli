(** Ethernet II header codec. *)

type t = { dst : Mac.t; src : Mac.t; ethertype : int }

val size : int
(** 14 bytes. *)

val ethertype_ipv4 : int
val ethertype_arp : int
val ethertype_vlan : int

val ethertype_sfc : int
(** The EtherType Dejavu uses to signal the SFC header (0x894F, the NSH
    EtherType the paper's header derives from). *)

val make : ?dst:Mac.t -> ?src:Mac.t -> int -> t
val encode_into : t -> Bytes.t -> off:int -> unit
val decode : Bytes.t -> off:int -> (t, string) result
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
