(** VXLAN header codec (RFC 7348). *)

type t = { flags : int; vni : int }

val size : int
(** 8 bytes. *)

val make : int -> t
(** [make vni] with the I flag set. *)

val encode_into : t -> Bytes.t -> off:int -> unit
val decode : Bytes.t -> off:int -> (t, string) result
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
