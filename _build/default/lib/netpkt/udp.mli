(** UDP header codec. *)

type t = { src_port : int; dst_port : int; length : int; checksum : int }

val size : int
val port_vxlan : int
val make : ?length:int -> src_port:int -> dst_port:int -> unit -> t
val encode_into : t -> Bytes.t -> off:int -> unit
val decode : Bytes.t -> off:int -> (t, string) result
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
