lib/nflib/vxlan_gw.ml: Action Bitval Control Dejavu_core Expr Fieldref List Net_hdrs Netpkt Nf P4ir Table
