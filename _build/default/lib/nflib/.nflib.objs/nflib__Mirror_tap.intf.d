lib/nflib/mirror_tap.mli: Dejavu_core Netpkt
