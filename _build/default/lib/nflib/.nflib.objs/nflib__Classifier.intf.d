lib/nflib/classifier.mli: Dejavu_core Netpkt
