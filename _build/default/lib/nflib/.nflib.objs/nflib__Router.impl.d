lib/nflib/router.ml: Action Bitval Control Dejavu_core Expr List Net_hdrs Netpkt Nf P4ir Sfc_header Table
