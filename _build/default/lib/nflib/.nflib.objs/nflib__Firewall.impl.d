lib/nflib/firewall.ml: Dejavu_core List Net_hdrs Netpkt Nf P4ir Sfc_header Table
