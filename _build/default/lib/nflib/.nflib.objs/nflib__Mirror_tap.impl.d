lib/nflib/mirror_tap.ml: Action Dejavu_core List Net_hdrs Netpkt Nf P4ir Sfc_header Table
