lib/nflib/rate_limiter.ml: Action Bitval Compiler Control Dejavu_core Expr Hashtbl List Net_hdrs Nf Option P4ir Sfc_header Table
