lib/nflib/vgw.mli: Dejavu_core Netpkt
