lib/nflib/dscp_marker.ml: Action Bitval Dejavu_core List Net_hdrs Nf P4ir Sfc_header Table
