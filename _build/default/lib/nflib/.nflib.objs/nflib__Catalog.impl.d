lib/nflib/catalog.ml: Asic Chain Classifier Compiler Ddos_sketch Dejavu_core Dscp_marker Firewall Lb Mirror_tap Nat Netpkt Nf Placement Rate_limiter Router Runtime Vgw Vxlan_gw
