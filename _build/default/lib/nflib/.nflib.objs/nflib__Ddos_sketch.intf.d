lib/nflib/ddos_sketch.mli: Dejavu_core Netpkt P4ir
