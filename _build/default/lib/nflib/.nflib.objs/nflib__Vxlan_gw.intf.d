lib/nflib/vxlan_gw.mli: Dejavu_core Netpkt
