lib/nflib/rate_limiter.mli: Dejavu_core Hashtbl P4ir
