lib/nflib/catalog.mli: Asic Dejavu_core Netpkt Rate_limiter Vxlan_gw
