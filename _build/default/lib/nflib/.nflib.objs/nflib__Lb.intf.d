lib/nflib/lb.mli: Dejavu_core Netpkt P4ir
