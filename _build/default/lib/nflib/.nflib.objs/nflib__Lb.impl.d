lib/nflib/lb.ml: Action Control Dejavu_core Expr Int64 List Net_hdrs Netpkt Nf P4ir Runtime Sfc_header
