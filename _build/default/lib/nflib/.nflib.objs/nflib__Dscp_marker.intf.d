lib/nflib/dscp_marker.mli: Dejavu_core
