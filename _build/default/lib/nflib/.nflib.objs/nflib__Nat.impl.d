lib/nflib/nat.ml: Action Bitval Dejavu_core List Net_hdrs Netpkt Nf P4ir Table
