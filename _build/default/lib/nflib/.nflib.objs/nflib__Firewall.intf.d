lib/nflib/firewall.mli: Dejavu_core Netpkt
