lib/nflib/vgw.ml: Action Bitval Dejavu_core Expr Fieldref List Net_hdrs Netpkt Nf P4ir Sfc_header Table
