lib/nflib/classifier.ml: Action Array Asic Bitval Dejavu_core Expr List Net_hdrs Netpkt Nf P4ir Runtime Sfc_header Table
