lib/nflib/nat.mli: Dejavu_core Netpkt
