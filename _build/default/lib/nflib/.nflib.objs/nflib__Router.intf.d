lib/nflib/router.mli: Dejavu_core Netpkt
