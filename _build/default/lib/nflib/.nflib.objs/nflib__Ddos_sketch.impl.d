lib/nflib/ddos_sketch.ml: Action Compiler Control Dejavu_core Expr Fun List Net_hdrs Netpkt Nf Option P4ir Printf Sfc_header
