let name = "std"

let decl =
  P4ir.Hdr.decl name
    [
      ("ingress_port", 9);
      ("egress_spec", 9);
      ("egress_port", 9);
      ("resubmit_flag", 1);
      ("recirc_flag", 1);
      ("drop_flag", 1);
      ("mirror_flag", 1);
      ("to_cpu_flag", 1);
    ]

let r field = P4ir.Fieldref.v name field
let ingress_port = r "ingress_port"
let egress_spec = r "egress_spec"
let egress_port = r "egress_port"
let resubmit_flag = r "resubmit_flag"
let recirc_flag = r "recirc_flag"
let drop_flag = r "drop_flag"
let mirror_flag = r "mirror_flag"
let to_cpu_flag = r "to_cpu_flag"

let fresh () = P4ir.Hdr.inst_valid decl

let attach phv =
  P4ir.Phv.add_decl phv decl;
  P4ir.Phv.set_valid phv name
