lib/asic/flowsim.ml: Array List Queue Random
