lib/asic/flowsim.mli:
