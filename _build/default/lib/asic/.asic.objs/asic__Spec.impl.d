lib/asic/spec.ml: Format List P4ir Printf
