lib/asic/chip.mli: Bytes P4ir Pipelet Port Spec Stdlib
