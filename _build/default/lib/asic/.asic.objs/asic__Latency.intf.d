lib/asic/latency.mli: Spec
