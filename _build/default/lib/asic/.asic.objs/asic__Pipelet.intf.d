lib/asic/pipelet.mli: Bytes Format P4ir Spec
