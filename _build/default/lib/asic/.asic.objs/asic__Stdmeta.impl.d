lib/asic/stdmeta.ml: P4ir
