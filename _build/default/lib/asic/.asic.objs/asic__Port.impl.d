lib/asic/port.ml: Array List Printf Spec
