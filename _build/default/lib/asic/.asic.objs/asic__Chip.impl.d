lib/asic/chip.ml: Array Bytes Latency List Option P4ir Pipelet Port Printf Result Spec Stdmeta
