lib/asic/port.mli: Spec
