lib/asic/stdmeta.mli: P4ir
