lib/asic/latency.ml: Spec
