lib/asic/spec.mli: Format P4ir
