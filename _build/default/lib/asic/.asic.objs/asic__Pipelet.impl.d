lib/asic/pipelet.ml: Array Bytes Format Fun Hashtbl List Option P4ir Printf Spec Stdmeta String
