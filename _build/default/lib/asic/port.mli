(** Ethernet port modes. A loopback port takes no external traffic and
    bounces every packet sent to it back into its pipeline's ingress —
    the mechanism Dejavu uses to buy recirculation bandwidth (§4). *)

type mode = Normal | Loopback

type t

val make : Spec.t -> t
(** All Ethernet ports in [Normal] mode. *)

val set_mode : t -> int -> mode -> unit
(** Raises [Invalid_argument] for a non-Ethernet port. *)

val set_pipeline_loopback : t -> Spec.t -> int -> unit
(** Put every Ethernet port of a pipeline in loopback mode — the §5
    prototype configuration. *)

val mode : t -> int -> mode
val is_loopback : t -> int -> bool
val loopback_count : t -> int
val normal_count : t -> int

val external_capacity_fraction : t -> float
(** [(n - m) / n] where [m] of [n] Ethernet ports are loopback — the
    paper's linear capacity model. *)

val copy : t -> t
val spec : t -> Spec.t
