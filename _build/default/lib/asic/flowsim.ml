type config = {
  n_recircs : int;
  pkts_per_slot : int;
  buffer_pkts : int;
  slots : int;
  warmup_slots : int;
  seed : int;
}

let default ~n_recircs =
  {
    n_recircs;
    pkts_per_slot = 100;
    buffer_pkts = 200;
    slots = 4000;
    warmup_slots = 1000;
    seed = 7;
  }

type stats = {
  offered : int;
  delivered : int;
  dropped : int;
  throughput_fraction : float;
}

(* A packet is just the number of loopback passes it still needs. *)

let shuffle st arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let run config =
  if config.n_recircs < 0 then invalid_arg "Flowsim.run: negative recircs";
  let st = Random.State.make [| config.seed |] in
  let queue = Queue.create () in
  (* Served by EB this slot; re-enter EB next slot (via IB) unless done. *)
  let in_flight = ref [] in
  let offered = ref 0 in
  let delivered = ref 0 in
  let dropped = ref 0 in
  let measuring slot = slot >= config.warmup_slots in
  for slot = 0 to config.slots - 1 do
    (* Fresh arrivals at line rate, plus packets coming back from IB;
       random interleaving models fair contention at EB's buffer. *)
    let fresh = Array.make config.pkts_per_slot config.n_recircs in
    if measuring slot then offered := !offered + Array.length fresh;
    let returning = Array.of_list !in_flight in
    in_flight := [];
    let arrivals = Array.append fresh returning in
    shuffle st arrivals;
    Array.iter
      (fun remaining ->
        if remaining = 0 then begin
          (* Needs no loopback pass: leaves directly through EA. *)
          if measuring slot then incr delivered
        end
        else if Queue.length queue < config.buffer_pkts then
          Queue.add remaining queue
        else if measuring slot then incr dropped)
      arrivals;
    (* EB drains at line rate. *)
    let budget = ref config.pkts_per_slot in
    while !budget > 0 && not (Queue.is_empty queue) do
      decr budget;
      let remaining = Queue.pop queue - 1 in
      if remaining = 0 then begin
        if measuring slot then incr delivered
      end
      else in_flight := remaining :: !in_flight
    done
  done;
  let measured_slots = config.slots - config.warmup_slots in
  let line = float_of_int (config.pkts_per_slot * measured_slots) in
  {
    offered = !offered;
    delivered = !delivered;
    dropped = !dropped;
    throughput_fraction = float_of_int !delivered /. line;
  }

let sweep ?(config = fun n_recircs -> default ~n_recircs) ns =
  List.map (fun n -> (n, run (config n))) ns
