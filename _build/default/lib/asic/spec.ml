type latency_params = {
  mac_serdes_ns : float;
  parse_ns : float;
  stage_ns : float;
  deparse_ns : float;
  tm_ns : float;
  recirc_port_ns : float;
  wire_ns_per_m : float;
}

type t = {
  name : string;
  n_pipelines : int;
  stages_per_pipelet : int;
  ports_per_pipeline : int;
  port_gbps : float;
  recirc_port_gbps : float;
  stage_caps : P4ir.Resources.stage_caps;
  lat : latency_params;
}

let default_lat =
  {
    mac_serdes_ns = 70.0;
    parse_ns = 40.0;
    stage_ns = 12.0;
    deparse_ns = 25.0;
    tm_ns = 100.0;
    recirc_port_ns = 75.0;
    wire_ns_per_m = 5.0;
  }

let wedge_100b =
  {
    name = "wedge-100b-32x";
    n_pipelines = 2;
    stages_per_pipelet = 12;
    ports_per_pipeline = 16;
    port_gbps = 100.0;
    recirc_port_gbps = 100.0;
    stage_caps = P4ir.Resources.tofino_stage_caps;
    lat = default_lat;
  }

let tofino_4pipe =
  {
    wedge_100b with
    name = "tofino-4pipe";
    n_pipelines = 4;
    ports_per_pipeline = 16;
  }

let n_pipelets t = 2 * t.n_pipelines
let n_eth_ports t = t.n_pipelines * t.ports_per_pipeline

let port_pipeline t port =
  if port < 0 || port >= n_eth_ports t then
    invalid_arg (Printf.sprintf "Spec.port_pipeline: port %d out of range" port)
  else port / t.ports_per_pipeline

let ports_of_pipeline t pipe =
  List.init t.ports_per_pipeline (fun i -> (pipe * t.ports_per_pipeline) + i)

let recirc_port pipe = 256 + pipe
let is_recirc_port port = port >= 256 && port < 320
let pipeline_of_recirc_port port = port - 256
let cpu_port = 320

let valid_port t port =
  (port >= 0 && port < n_eth_ports t)
  || (is_recirc_port port && pipeline_of_recirc_port port < t.n_pipelines)
  || port = cpu_port

let pipeline_of_any_port t port =
  if port = cpu_port then None
  else if is_recirc_port port then Some (pipeline_of_recirc_port port)
  else Some (port_pipeline t port)

let stage_resources t =
  let c = t.stage_caps in
  {
    P4ir.Resources.stages = 1;
    table_ids = c.P4ir.Resources.cap_table_ids;
    srams = c.P4ir.Resources.cap_srams;
    tcams = c.P4ir.Resources.cap_tcams;
    crossbar_bytes = c.P4ir.Resources.cap_crossbar_bytes;
    vliws = c.P4ir.Resources.cap_vliws;
    gateways = c.P4ir.Resources.cap_gateways;
    hash_bits = c.P4ir.Resources.cap_hash_bits;
  }

let pipelet_resources t =
  P4ir.Resources.scale t.stages_per_pipelet (stage_resources t)

let chip_resources t = P4ir.Resources.scale (n_pipelets t) (pipelet_resources t)

let total_capacity_gbps t = float_of_int (n_eth_ports t) *. t.port_gbps

let pp ppf t =
  Format.fprintf ppf
    "%s: %d pipelines (%d pipelets), %d stages/pipelet, %d x %.0f Gbps ports"
    t.name t.n_pipelines (n_pipelets t) t.stages_per_pipelet (n_eth_ports t)
    t.port_gbps
