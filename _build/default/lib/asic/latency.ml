let pipe_pass_ns (spec : Spec.t) =
  let l = spec.Spec.lat in
  l.Spec.parse_ns
  +. (float_of_int spec.Spec.stages_per_pipelet *. l.Spec.stage_ns)
  +. l.Spec.deparse_ns

let port_to_port_ns spec =
  let l = spec.Spec.lat in
  (2.0 *. l.Spec.mac_serdes_ns) +. (2.0 *. pipe_pass_ns spec) +. l.Spec.tm_ns

let recirc_on_chip_ns (spec : Spec.t) = spec.Spec.lat.Spec.recirc_port_ns

let recirc_off_chip_ns (spec : Spec.t) ~cable_m =
  let l = spec.Spec.lat in
  (2.0 *. l.Spec.mac_serdes_ns) +. (cable_m *. l.Spec.wire_ns_per_m)

let path_ns spec ~ingress_passes ~egress_passes ~tm_crossings ~on_chip_recircs =
  let l = spec.Spec.lat in
  (2.0 *. l.Spec.mac_serdes_ns)
  +. (float_of_int (ingress_passes + egress_passes) *. pipe_pass_ns spec)
  +. (float_of_int tm_crossings *. l.Spec.tm_ns)
  +. (float_of_int on_chip_recircs *. recirc_on_chip_ns spec)
