(** Chip geometry and calibration constants for the modeled switch ASIC.

    The default instance mirrors the paper's testbed: a Wedge-100B 32X
    with one Tofino — 32 x 100 Gbps Ethernet ports, 2 physical pipelines
    (4 pipelets), 16 hardwired ports per pipeline, and a dedicated
    100 Gbps recirculation port per pipeline. *)

type latency_params = {
  mac_serdes_ns : float;  (** MAC + serdes, one direction *)
  parse_ns : float;
  stage_ns : float;  (** per MAU stage *)
  deparse_ns : float;
  tm_ns : float;  (** traffic-manager crossing *)
  recirc_port_ns : float;  (** dedicated on-chip recirculation circuitry *)
  wire_ns_per_m : float;  (** DAC cable propagation *)
}

type t = {
  name : string;
  n_pipelines : int;
  stages_per_pipelet : int;
  ports_per_pipeline : int;
  port_gbps : float;
  recirc_port_gbps : float;
  stage_caps : P4ir.Resources.stage_caps;
  lat : latency_params;
}

val wedge_100b : t
val tofino_4pipe : t
(** A larger 4-pipeline variant for placement experiments. *)

val n_pipelets : t -> int
val n_eth_ports : t -> int
val port_pipeline : t -> int -> int
(** Pipeline owning an Ethernet port id. Raises on out-of-range ids. *)

val ports_of_pipeline : t -> int -> int list
val recirc_port : int -> int
(** The dedicated recirculation port id of a pipeline (256 + pipe). *)

val is_recirc_port : int -> bool
val pipeline_of_recirc_port : int -> int
val cpu_port : int
val valid_port : t -> int -> bool
(** Ethernet, recirculation or CPU port of this chip. *)

val pipeline_of_any_port : t -> int -> int option
(** Pipeline for Ethernet/recirc ports; [None] for the CPU port. *)

val stage_resources : t -> P4ir.Resources.t
(** Capacity vector of one MAU stage (stages = 1). *)

val pipelet_resources : t -> P4ir.Resources.t
(** Capacity of one pipelet (all its stages). *)

val chip_resources : t -> P4ir.Resources.t
(** Capacity of the whole chip (all pipelets). *)

val total_capacity_gbps : t -> float
val pp : Format.formatter -> t -> unit
