(** Component latency model — the substitute for the paper's hardware
    timestamping (Fig. 8b). All values in nanoseconds. *)

val pipe_pass_ns : Spec.t -> float
(** One pass through a pipelet: parse + every MAU stage + deparse. *)

val port_to_port_ns : Spec.t -> float
(** Ingress MAC/serdes + ingress pipe + TM + egress pipe + egress
    MAC/serdes — the paper's ~650 ns idle-buffer baseline. *)

val recirc_on_chip_ns : Spec.t -> float
(** Extra latency of one on-chip recirculation: the hop from egress
    deparser back to ingress parser over dedicated circuitry, with no
    serialization — the paper's ~75 ns. *)

val recirc_off_chip_ns : Spec.t -> cable_m:float -> float
(** Extra latency when looping through a direct-attach cable:
    serdes both ways plus propagation — the paper's ~145 ns at 1 m. *)

val path_ns :
  Spec.t ->
  ingress_passes:int ->
  egress_passes:int ->
  tm_crossings:int ->
  on_chip_recircs:int ->
  float
(** Latency of a full path through the chip (both MAC crossings
    included). *)
