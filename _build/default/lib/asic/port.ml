type mode = Normal | Loopback

type t = { spec : Spec.t; modes : mode array }

let make spec = { spec; modes = Array.make (Spec.n_eth_ports spec) Normal }

let set_mode t port mode =
  if port < 0 || port >= Array.length t.modes then
    invalid_arg (Printf.sprintf "Port.set_mode: %d is not an Ethernet port" port)
  else t.modes.(port) <- mode

let set_pipeline_loopback t spec pipe =
  List.iter (fun p -> set_mode t p Loopback) (Spec.ports_of_pipeline spec pipe)

let mode t port =
  if port < 0 || port >= Array.length t.modes then Normal else t.modes.(port)

let is_loopback t port = mode t port = Loopback

let loopback_count t =
  Array.fold_left (fun acc m -> if m = Loopback then acc + 1 else acc) 0 t.modes

let normal_count t = Array.length t.modes - loopback_count t

let external_capacity_fraction t =
  let n = Array.length t.modes in
  if n = 0 then 0.0 else float_of_int (normal_count t) /. float_of_int n

let copy t = { t with modes = Array.copy t.modes }
let spec t = t.spec
