(** Slotted packet-level contention simulator for recirculation
    throughput (the measured side of Fig. 8a).

    Setup after Fig. 7(a): two port groups of equal bandwidth T; group B
    is in loopback mode. Fresh traffic enters at full rate T on group A's
    ingress and must pass through loopback egress EB once per required
    recirculation before finally leaving through EA. EB has a finite
    buffer: when fresh and re-circulating packets together exceed its
    drain rate, the overflow is dropped — the feedback queue of §4. *)

type config = {
  n_recircs : int;  (** passes through the loopback port; >= 0 *)
  pkts_per_slot : int;  (** T expressed in packets per slot *)
  buffer_pkts : int;  (** EB queue capacity *)
  slots : int;  (** simulation length *)
  warmup_slots : int;  (** excluded from the measurement *)
  seed : int;
}

val default : n_recircs:int -> config

type stats = {
  offered : int;  (** fresh packets injected during measurement *)
  delivered : int;  (** packets that completed all recirculations *)
  dropped : int;
  throughput_fraction : float;  (** delivered rate / line rate T *)
}

val run : config -> stats

val sweep : ?config:(int -> config) -> int list -> (int * stats) list
(** [sweep [1;2;3;4;5]] runs one simulation per recirculation count. *)
