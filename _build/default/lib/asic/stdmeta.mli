(** The target's standard/intrinsic metadata header — always valid in
    every PHV the chip processes. Mirrors the fields the paper's platform
    metadata copies (§3): ports plus the resubmit / recirculate / drop /
    mirror / to-CPU flags. *)

val decl : P4ir.Hdr.decl
val name : string

(** The port fields are [bit<9>]; every flag is [bit<1>]. [egress_spec]
    is set in ingress; [egress_port] is read-only in egress. *)

val ingress_port : P4ir.Fieldref.t
val egress_spec : P4ir.Fieldref.t
val egress_port : P4ir.Fieldref.t
val resubmit_flag : P4ir.Fieldref.t
val recirc_flag : P4ir.Fieldref.t
val drop_flag : P4ir.Fieldref.t
val mirror_flag : P4ir.Fieldref.t
val to_cpu_flag : P4ir.Fieldref.t

val fresh : unit -> P4ir.Hdr.inst
(** A valid instance with all fields zero. *)

val attach : P4ir.Phv.t -> unit
(** Ensure the PHV carries a valid standard-metadata instance. *)
