type expectation = Emitted_on of int | Emitted_anywhere | Dropped | To_cpu

type outcome = {
  runtime : Dejavu_core.Runtime.outcome;
  decoded : Netpkt.Pkt.t option;
}

let pp_expectation ppf = function
  | Emitted_on p -> Format.fprintf ppf "emitted on port %d" p
  | Emitted_anywhere -> Format.pp_print_string ppf "emitted"
  | Dropped -> Format.pp_print_string ppf "dropped"
  | To_cpu -> Format.pp_print_string ppf "sent to CPU"

let frame_of_verdict = function
  | Asic.Chip.Emitted { frame; _ } -> Some frame
  | Asic.Chip.To_cpu frame -> Some frame
  | Asic.Chip.Dropped -> None

let send runtime ~in_port pkt =
  let frame = Netpkt.Pkt.encode pkt in
  match Dejavu_core.Runtime.process runtime ~in_port frame with
  | Error e -> Error e
  | Ok outcome ->
      let decoded =
        Option.bind
          (frame_of_verdict outcome.Dejavu_core.Runtime.verdict)
          (fun f -> Result.to_option (Netpkt.Pkt.decode f))
      in
      Ok { runtime = outcome; decoded }

let verdict_matches expect verdict =
  match (expect, verdict) with
  | Emitted_on p, Asic.Chip.Emitted { port; _ } -> p = port
  | Emitted_anywhere, Asic.Chip.Emitted _ -> true
  | Dropped, Asic.Chip.Dropped -> true
  | To_cpu, Asic.Chip.To_cpu _ -> true
  | (Emitted_on _ | Emitted_anywhere | Dropped | To_cpu), _ -> false

let pp_verdict ppf = function
  | Asic.Chip.Emitted { port; _ } -> Format.fprintf ppf "emitted on port %d" port
  | Asic.Chip.Dropped -> Format.pp_print_string ppf "dropped"
  | Asic.Chip.To_cpu _ -> Format.pp_print_string ppf "sent to CPU"

let send_expect runtime ~in_port pkt ~expect ?check () =
  match send runtime ~in_port pkt with
  | Error e -> Error e
  | Ok outcome ->
      if not (verdict_matches expect outcome.runtime.Dejavu_core.Runtime.verdict)
      then
        Error
          (Format.asprintf "expected %a, got %a" pp_expectation expect pp_verdict
             outcome.runtime.Dejavu_core.Runtime.verdict)
      else (
        match (check, outcome.decoded) with
        | None, _ -> Ok outcome
        | Some _, None -> Error "content check requested but no output frame"
        | Some f, Some pkt -> (
            match f pkt with
            | Ok () -> Ok outcome
            | Error e -> Error ("content check failed: " ^ e)))

let expect_field name ~pp ~eq expected actual =
  if eq expected actual then Ok ()
  else
    Error (Format.asprintf "%s: expected %a, got %a" name pp expected pp actual)
