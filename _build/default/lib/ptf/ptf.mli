(** A Packet Test Framework in the spirit of p4lang/ptf — the tool the
    paper used for its §5 functional validation: build a packet, send it
    into a port, assert on where it comes out and what it looks like. *)

type expectation =
  | Emitted_on of int  (** specific Ethernet port *)
  | Emitted_anywhere
  | Dropped
  | To_cpu

type outcome = {
  runtime : Dejavu_core.Runtime.outcome;
  decoded : Netpkt.Pkt.t option;  (** the emitted/punted frame, decoded *)
}

val send :
  Dejavu_core.Runtime.t ->
  in_port:int ->
  Netpkt.Pkt.t ->
  (outcome, string) result
(** Encode and inject a packet, resolving CPU round trips. *)

val send_expect :
  Dejavu_core.Runtime.t ->
  in_port:int ->
  Netpkt.Pkt.t ->
  expect:expectation ->
  ?check:(Netpkt.Pkt.t -> (unit, string) result) ->
  unit ->
  (outcome, string) result
(** [send] plus verdict assertion plus an optional content check on the
    output frame. All failures become [Error] with a description. *)

val expect_field :
  string -> pp:(Format.formatter -> 'a -> unit) -> eq:('a -> 'a -> bool) ->
  'a -> 'a -> (unit, string) result
(** [expect_field name ~pp ~eq expected actual] — a building block for
    [check] functions. *)

val pp_expectation : Format.formatter -> expectation -> unit
