test/test_flowsim.ml: Alcotest Asic Dejavu_core List Model Printf
