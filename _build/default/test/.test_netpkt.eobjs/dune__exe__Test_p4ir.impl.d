test/test_p4ir.ml: Action Alcotest Bitval Bytes Control Deps Expr Fieldref Gen Hdr List Netpkt P4ir Phv QCheck QCheck_alcotest Resources Result Table
