test/test_parser_merge.mli:
