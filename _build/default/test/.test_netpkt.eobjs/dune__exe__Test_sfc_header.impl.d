test/test_sfc_header.ml: Alcotest Array Bytes Dejavu_core Netpkt P4ir QCheck QCheck_alcotest Result Sfc_header
