test/test_fuzz.ml: Alcotest Asic Chain Compiler Dejavu_core Fun Int64 List Net_hdrs Netpkt Nf Nflib P4ir Placement Printf Ptf Random Result Runtime Sfc_header String
