test/test_parser.ml: Alcotest Bytes Dejavu_core List Netpkt P4ir Parser_graph Phv QCheck QCheck_alcotest Random Result
