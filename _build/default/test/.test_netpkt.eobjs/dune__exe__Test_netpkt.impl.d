test/test_netpkt.ml: Alcotest Bytes Filename Fun Int64 List Netpkt QCheck QCheck_alcotest Random Result String Sys
