test/test_compose.ml: Alcotest Asic Compose Dejavu_core Layout List Net_hdrs Nf Nflib Option P4ir Parser_merge Result Sfc_header String
