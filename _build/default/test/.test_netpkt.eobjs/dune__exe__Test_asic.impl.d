test/test_asic.ml: Action Alcotest Asic Bytes Control Dejavu_core Expr Fieldref Hdr List Netpkt P4ir Parser_graph Printf Program Result Table
