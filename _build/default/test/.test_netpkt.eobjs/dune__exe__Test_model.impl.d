test/test_model.ml: Alcotest Array Asic Dejavu_core Model QCheck QCheck_alcotest Traversal
