test/test_baseline.ml: Action Alcotest Baseline Dejavu_core Expr Fieldref List Nf Nflib P4ir Printf Result Table
