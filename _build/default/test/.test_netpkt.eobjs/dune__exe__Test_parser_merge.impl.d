test/test_parser_merge.ml: Alcotest Dejavu_core Hdr List Net_hdrs Netpkt P4ir Parser_graph Parser_merge Phv Result Sfc_header
