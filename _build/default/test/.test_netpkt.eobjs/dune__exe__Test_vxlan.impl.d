test/test_vxlan.ml: Alcotest Asic Bytes Chain Compiler Dejavu_core Format List Net_hdrs Netpkt Nf Nflib P4ir Placement Printf Ptf Result Runtime Sfc_header
