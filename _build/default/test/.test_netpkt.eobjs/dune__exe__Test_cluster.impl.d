test/test_cluster.ml: Alcotest Asic Chain Cluster Dejavu_core Layout List Option P4ir Printf Result Traversal
