test/test_nfs.mli:
