test/test_bitval.mli:
