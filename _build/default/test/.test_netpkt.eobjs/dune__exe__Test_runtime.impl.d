test/test_runtime.ml: Alcotest Asic Bytes Compiler Dejavu_core List Netpkt Nflib Ptf Result Runtime Sfc_header String
