test/test_netpkt.mli:
