test/test_api.ml: Alcotest Asic Chain Cluster Compiler Dejavu_core Layout List Net_hdrs Netpkt Nf Nflib Option P4ir Ptf Result Runtime String
