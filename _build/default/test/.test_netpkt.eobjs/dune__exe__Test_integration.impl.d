test/test_integration.ml: Alcotest Asic Compiler Dejavu_core List Netpkt Nflib Placement Printf Ptf Result Runtime
