test/test_traversal.ml: Alcotest Asic Chain Dejavu_core Layout List Printf QCheck QCheck_alcotest Random Traversal
