test/test_sfc_header.mli:
