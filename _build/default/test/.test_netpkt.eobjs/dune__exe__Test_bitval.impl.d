test/test_bitval.ml: Alcotest Bitval Fun Int64 List P4ir Printf QCheck QCheck_alcotest
