test/test_placement.ml: Alcotest Asic Chain Dejavu_core Format Layout List P4ir Placement Printf QCheck QCheck_alcotest Random Result
