(* Property tests for the width-bounded value algebra. *)

let qtest = QCheck_alcotest.to_alcotest
let check = Alcotest.check

open P4ir

let gen_width = QCheck.Gen.int_range 1 64
let gen_val = QCheck.Gen.(map2 (fun w v -> (w, v)) gen_width ui64)

let arb_val =
  QCheck.make gen_val ~print:(fun (w, v) -> Printf.sprintf "(w=%d, v=%Lu)" w v)

let mask w = if w >= 64 then -1L else Int64.(sub (shift_left 1L w) 1L)

let prop_make_masks =
  QCheck.Test.make ~name:"make truncates to width" ~count:500 arb_val
    (fun (w, v) ->
      Int64.equal (Bitval.to_int64 (Bitval.make ~width:w v)) (Int64.logand v (mask w)))

let prop_add_modular =
  QCheck.Test.make ~name:"add is modular in the width" ~count:500
    QCheck.(pair arb_val int64)
    (fun ((w, a), b) ->
      let va = Bitval.make ~width:w a and vb = Bitval.make ~width:w b in
      Int64.equal
        (Bitval.to_int64 (Bitval.add va vb))
        (Int64.logand (Int64.add a b) (mask w)))

let prop_sub_inverse =
  QCheck.Test.make ~name:"(a + b) - b = a" ~count:500
    QCheck.(pair arb_val int64)
    (fun ((w, a), b) ->
      let va = Bitval.make ~width:w a and vb = Bitval.make ~width:w b in
      Bitval.equal (Bitval.sub (Bitval.add va vb) vb) va)

let prop_lognot_involution =
  QCheck.Test.make ~name:"lognot twice is identity" ~count:300 arb_val
    (fun (w, v) ->
      let x = Bitval.make ~width:w v in
      Bitval.equal (Bitval.lognot (Bitval.lognot x)) x)

let prop_concat_slice =
  QCheck.Test.make ~name:"slice inverts concat" ~count:500
    QCheck.(pair (pair (int_range 1 32) int64) (pair (int_range 1 32) int64))
    (fun ((wa, a), (wb, b)) ->
      let va = Bitval.make ~width:wa a and vb = Bitval.make ~width:wb b in
      let c = Bitval.concat va vb in
      Bitval.equal (Bitval.slice c ~hi:(wa + wb - 1) ~lo:wb) va
      && Bitval.equal (Bitval.slice c ~hi:(wb - 1) ~lo:0) vb)

let prop_unsigned_order_total =
  QCheck.Test.make ~name:"lt is a strict total order" ~count:500
    QCheck.(pair arb_val int64)
    (fun ((w, a), b) ->
      let va = Bitval.make ~width:w a and vb = Bitval.make ~width:w b in
      let lt = Bitval.lt va vb and gt = Bitval.lt vb va in
      let eq = Bitval.equal_value va vb in
      (* Exactly one of lt, gt, eq. *)
      List.length (List.filter Fun.id [ lt; gt; eq ]) = 1)

let prop_shift_left_mul2 =
  QCheck.Test.make ~name:"shift_left 1 = add twice" ~count:300 arb_val
    (fun (w, v) ->
      let x = Bitval.make ~width:w v in
      Bitval.equal (Bitval.shift_left x 1) (Bitval.add x x))

let prop_resize_widen_preserves =
  QCheck.Test.make ~name:"widening resize preserves value" ~count:300
    QCheck.(pair (int_range 1 32) int64)
    (fun (w, v) ->
      let x = Bitval.make ~width:w v in
      Int64.equal (Bitval.to_int64 (Bitval.resize x 64)) (Bitval.to_int64 x))

let test_width_bounds () =
  Alcotest.check_raises "width 0"
    (Invalid_argument "Bitval.make: width 0 not in 1..64") (fun () ->
      ignore (Bitval.make ~width:0 1L));
  Alcotest.check_raises "width 65"
    (Invalid_argument "Bitval.make: width 65 not in 1..64") (fun () ->
      ignore (Bitval.make ~width:65 1L))

let test_mask_of_prefix () =
  check Alcotest.int64 "prefix 24 of 32" 0xFFFFFF00L
    (Bitval.to_int64 (Bitval.mask_of_prefix ~width:32 24));
  check Alcotest.int64 "prefix 0" 0L
    (Bitval.to_int64 (Bitval.mask_of_prefix ~width:32 0));
  check Alcotest.int64 "full prefix" 0xFFFFFFFFL
    (Bitval.to_int64 (Bitval.mask_of_prefix ~width:32 32))

let test_max_value_unsigned () =
  let m = Bitval.max_value 64 in
  Alcotest.(check bool) "max 64-bit compares above 1" true
    (Bitval.lt (Bitval.one 64) m)

let test_to_bool () =
  Alcotest.(check bool) "zero is false" false (Bitval.to_bool (Bitval.zero 8));
  Alcotest.(check bool) "nonzero is true" true (Bitval.to_bool (Bitval.one 8))

let test_width_sensitive_equality () =
  Alcotest.(check bool) "same value, different widths" false
    (Bitval.equal (Bitval.of_int ~width:8 5) (Bitval.of_int ~width:16 5));
  Alcotest.(check bool) "equal_value ignores width" true
    (Bitval.equal_value (Bitval.of_int ~width:8 5) (Bitval.of_int ~width:16 5))

let () =
  Alcotest.run "bitval"
    [
      ( "algebra",
        [
          qtest prop_make_masks;
          qtest prop_add_modular;
          qtest prop_sub_inverse;
          qtest prop_lognot_involution;
          qtest prop_concat_slice;
          qtest prop_unsigned_order_total;
          qtest prop_shift_left_mul2;
          qtest prop_resize_widen_preserves;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "width bounds" `Quick test_width_bounds;
          Alcotest.test_case "mask_of_prefix" `Quick test_mask_of_prefix;
          Alcotest.test_case "unsigned max" `Quick test_max_value_unsigned;
          Alcotest.test_case "to_bool" `Quick test_to_bool;
          Alcotest.test_case "width-sensitive equal" `Quick
            test_width_sensitive_equality;
        ] );
    ]
