(* The §4 analytic models. *)

open Dejavu_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let close ?(tol = 0.005) a b = abs_float (a -. b) < tol

let test_loopback_split () =
  let s = Model.loopback_split ~n_ports:32 ~m_loopback:16 in
  check Alcotest.(float 1e-9) "half external" 0.5 s.Model.external_fraction;
  check Alcotest.(float 1e-9) "all traffic can recirc once" 1.0
    s.Model.single_recirc_fraction;
  let s = Model.loopback_split ~n_ports:32 ~m_loopback:8 in
  check Alcotest.(float 1e-9) "3/4 external" 0.75 s.Model.external_fraction;
  check Alcotest.bool "1/3 can recirc" true
    (close s.Model.single_recirc_fraction (1.0 /. 3.0));
  let s = Model.loopback_split ~n_ports:32 ~m_loopback:0 in
  check Alcotest.(float 1e-9) "no loopback, full external" 1.0
    s.Model.external_fraction;
  check Alcotest.(float 1e-9) "no recirc capacity" 0.0
    s.Model.single_recirc_fraction

let test_feedback_known_values () =
  check Alcotest.bool "k=0 -> 1.0" true (close (Model.feedback_throughput 0) 1.0);
  check Alcotest.bool "k=1 -> 1.0" true (close (Model.feedback_throughput 1) 1.0);
  (* Paper: x = 0.62T, delivered 0.38T. *)
  check Alcotest.bool "k=2 -> 0.382" true
    (close (Model.feedback_throughput 2) 0.382);
  (* Paper: "effective throughput of the traffic with 3-recirculation as 0.16T" *)
  check Alcotest.bool "k=3 -> ~0.16" true
    (close ~tol:0.01 (Model.feedback_throughput 3) 0.16)

let test_feedback_golden_step () =
  (* The x in the paper's worked example: first-pass rate at the
     saturated loopback port is the golden ratio conjugate. *)
  let rates = Model.feedback_arrival_rates 2 in
  let total = Array.fold_left ( +. ) 0.0 rates in
  let keep = 1.0 /. total in
  check Alcotest.bool "x = 0.618T" true (close (rates.(0) *. keep) Model.golden_x);
  check Alcotest.bool "golden constant" true (close Model.golden_x 0.618034)

let prop_feedback_decreasing =
  QCheck.Test.make ~name:"feedback throughput decreases in k" ~count:20
    QCheck.(int_range 0 12)
    (fun k -> Model.feedback_throughput k >= Model.feedback_throughput (k + 1) -. 1e-9)

let prop_feedback_bounded =
  QCheck.Test.make ~name:"feedback throughput in (0, 1]" ~count:20
    QCheck.(int_range 0 12)
    (fun k ->
      let f = Model.feedback_throughput k in
      f > 0.0 && f <= 1.0 +. 1e-9)

let test_chain_throughput () =
  let spec = Asic.Spec.wedge_100b in
  let ports = Asic.Port.make spec in
  Asic.Port.set_pipeline_loopback ports spec 1;
  (* §5 setting: 1.6 Tbps external, one free recirculation. *)
  check Alcotest.bool "no recirc: 1.6T" true
    (close ~tol:1.0 (Model.chain_throughput_gbps spec ports ~recircs:0) 1600.0);
  check Alcotest.bool "one recirc is free" true
    (close ~tol:1.0 (Model.chain_throughput_gbps spec ports ~recircs:1) 1600.0);
  check Alcotest.bool "two recircs degrade" true
    (Model.chain_throughput_gbps spec ports ~recircs:2 < 1600.0)

let test_software_cores () =
  (* §1: 10s of Gbps needs multiple cores; match 1.6 Tbps at 10 Gbps/core. *)
  check Alcotest.int "160 cores for the switch's throughput" 160
    (Model.software_cores_needed ~target_gbps:1600.0 ~gbps_per_core:10.0);
  check Alcotest.int "rounds up" 2
    (Model.software_cores_needed ~target_gbps:10.1 ~gbps_per_core:10.0)

let test_chain_latency_model () =
  let spec = Asic.Spec.wedge_100b in
  let path0 =
    {
      Traversal.steps =
        [
          Traversal.Ingress_step
            { pipeline = 0; idx_in = 0; idx_out = 2; action = Traversal.To_egress 0 };
          Traversal.Egress_step
            { pipeline = 0; idx_in = 2; idx_out = 3; action = Traversal.Emit };
        ];
      recircs = 0;
      resubmits = 0;
    }
  in
  check Alcotest.(float 1e-6) "0-recirc path = port-to-port"
    (Asic.Latency.port_to_port_ns spec)
    (Model.chain_latency_ns spec path0);
  let path1 =
    {
      Traversal.steps =
        [
          Traversal.Ingress_step
            { pipeline = 0; idx_in = 0; idx_out = 1; action = Traversal.To_egress 1 };
          Traversal.Egress_step
            { pipeline = 1; idx_in = 1; idx_out = 1; action = Traversal.Recirc };
          Traversal.Ingress_step
            { pipeline = 1; idx_in = 1; idx_out = 2; action = Traversal.To_egress 0 };
          Traversal.Egress_step
            { pipeline = 0; idx_in = 2; idx_out = 2; action = Traversal.Emit };
        ];
      recircs = 1;
      resubmits = 0;
    }
  in
  let extra =
    Model.chain_latency_ns spec path1 -. Model.chain_latency_ns spec path0
  in
  (* One recirc adds the loopback hop plus one more ingress+egress pass
     and TM crossing. *)
  check Alcotest.bool "recirc path costs one extra round" true
    (close ~tol:1.0 extra
       (Asic.Latency.recirc_on_chip_ns spec
       +. (2.0 *. Asic.Latency.pipe_pass_ns spec)
       +. spec.Asic.Spec.lat.Asic.Spec.tm_ns))

let () =
  Alcotest.run "model"
    [
      ( "loopback",
        [ Alcotest.test_case "capacity split" `Quick test_loopback_split ] );
      ( "feedback",
        [
          Alcotest.test_case "known values" `Quick test_feedback_known_values;
          Alcotest.test_case "golden step" `Quick test_feedback_golden_step;
          qtest prop_feedback_decreasing;
          qtest prop_feedback_bounded;
        ] );
      ( "chain",
        [
          Alcotest.test_case "throughput" `Quick test_chain_throughput;
          Alcotest.test_case "software cores" `Quick test_software_cores;
          Alcotest.test_case "latency" `Quick test_chain_latency_model;
        ] );
    ]
