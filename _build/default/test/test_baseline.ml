(* The §6 related-work model: Hyper4-style emulation must cost a
   multiple of the native resources, in the 3-7x band the literature
   reports (per-NF factors may scatter wider; the aggregate shouldn't). *)

open Dejavu_core

let check = Alcotest.check

let nfs () =
  let registry = Nflib.Catalog.registry () in
  List.filter_map
    (fun n -> Result.to_option (Nf.instantiate registry n))
    [ "classifier"; "fw"; "vgw"; "lb"; "router" ]

let test_emulation_costs_more_everywhere () =
  List.iter
    (fun nf ->
      let c = Baseline.compare_nf nf in
      check Alcotest.bool
        (c.Baseline.nf ^ ": emulated stages strictly exceed native")
        true
        (c.Baseline.emulated.P4ir.Resources.stages
        > c.Baseline.native.P4ir.Resources.stages);
      check Alcotest.bool (c.Baseline.nf ^ ": emulation never uses exact-match hashing")
        true
        (c.Baseline.emulated.P4ir.Resources.hash_bits = 0);
      check Alcotest.bool (c.Baseline.nf ^ ": generic matching lives in TCAM")
        true
        (c.Baseline.emulated.P4ir.Resources.tcams > 0))
    (nfs ())

let test_aggregate_factor_in_reported_band () =
  let total = Baseline.summary (nfs ()) in
  let stages =
    float_of_int total.Baseline.emulated.P4ir.Resources.stages
    /. float_of_int total.Baseline.native.P4ir.Resources.stages
  in
  check Alcotest.bool
    (Printf.sprintf "aggregate stage factor %.1fx within ~3-7x" stages)
    true
    (stages >= 3.0 && stages <= 8.0)

let test_overhead_factor_reporting () =
  let c = Baseline.compare_nf (List.hd (nfs ())) in
  let factors = Baseline.overhead_factor c in
  check Alcotest.bool "reports at least stages and table ids" true
    (List.mem_assoc "stages" factors && List.mem_assoc "table_ids" factors);
  List.iter
    (fun (name, f) ->
      check Alcotest.bool (name ^ " factor positive") true (f > 0.0))
    factors

let test_emulated_table_grows_with_primitives () =
  (* More primitives per action => more interpreter stages. *)
  let open P4ir in
  let f = Fieldref.v "ipv4" "ttl" in
  let mk n_prims =
    Table.make ~name:"t"
      ~keys:[ { Table.field = f; kind = Table.Exact; width = 8 } ]
      ~actions:
        [
          Action.make "a"
            (List.init n_prims (fun _ ->
                 Action.Assign (f, Expr.(Field f + const ~width:8 1))));
        ]
      ~default:("a", []) ()
  in
  let small = Baseline.emulated_table (mk 1) in
  let big = Baseline.emulated_table (mk 6) in
  check Alcotest.bool "6-primitive action needs more stages" true
    (big.P4ir.Resources.stages > small.P4ir.Resources.stages)

let () =
  Alcotest.run "baseline"
    [
      ( "emulation",
        [
          Alcotest.test_case "costs more" `Quick test_emulation_costs_more_everywhere;
          Alcotest.test_case "aggregate in band" `Quick
            test_aggregate_factor_in_reported_band;
          Alcotest.test_case "factor reporting" `Quick test_overhead_factor_reporting;
          Alcotest.test_case "grows with primitives" `Quick
            test_emulated_table_grows_with_primitives;
        ] );
    ]
