(* Unit and property tests for the byte-level packet substrate. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Bytes_util --- *)

let test_bits_roundtrip_simple () =
  let b = Bytes.make 8 '\000' in
  Netpkt.Bytes_util.set_bits b ~bit_off:3 ~width:13 0x1ABCL;
  check Alcotest.int64 "13-bit value at offset 3" 0x1ABCL
    (Netpkt.Bytes_util.get_bits b ~bit_off:3 ~width:13)

let test_bits_no_bleed () =
  let b = Bytes.make 4 '\255' in
  Netpkt.Bytes_util.set_bits b ~bit_off:8 ~width:8 0L;
  check Alcotest.int "byte before untouched" 0xff (Netpkt.Bytes_util.get_uint8 b 0);
  check Alcotest.int "target zeroed" 0 (Netpkt.Bytes_util.get_uint8 b 1);
  check Alcotest.int "byte after untouched" 0xff (Netpkt.Bytes_util.get_uint8 b 2)

let test_bits_out_of_range () =
  let b = Bytes.make 2 '\000' in
  Alcotest.check_raises "width 0 rejected"
    (Invalid_argument "Bytes_util: width 0 not in 1..64") (fun () ->
      ignore (Netpkt.Bytes_util.get_bits b ~bit_off:0 ~width:0));
  Alcotest.check_raises "overflow rejected"
    (Invalid_argument "Bytes_util: bit range [10,20) exceeds 2 bytes") (fun () ->
      ignore (Netpkt.Bytes_util.get_bits b ~bit_off:10 ~width:10))

let prop_bits_roundtrip =
  QCheck.Test.make ~name:"set_bits/get_bits roundtrip" ~count:500
    QCheck.(triple (int_bound 40) (int_range 1 64) int64)
    (fun (bit_off, width, v) ->
      let b = Bytes.make 16 '\000' in
      let masked =
        if width = 64 then v
        else Int64.logand v (Int64.sub (Int64.shift_left 1L width) 1L)
      in
      Netpkt.Bytes_util.set_bits b ~bit_off ~width v;
      Int64.equal (Netpkt.Bytes_util.get_bits b ~bit_off ~width) masked)

let prop_bits_preserves_neighbors =
  QCheck.Test.make ~name:"set_bits leaves other bits alone" ~count:300
    QCheck.(triple (int_bound 40) (int_range 1 64) int64)
    (fun (bit_off, width, v) ->
      let b = Bytes.make 16 '\255' in
      Netpkt.Bytes_util.set_bits b ~bit_off ~width v;
      (* All bits outside [bit_off, bit_off+width) must still be 1. *)
      let ok = ref true in
      for i = 0 to 127 do
        if i < bit_off || i >= bit_off + width then begin
          let byte = Netpkt.Bytes_util.get_uint8 b (i / 8) in
          if (byte lsr (7 - (i mod 8))) land 1 <> 1 then ok := false
        end
      done;
      !ok)

let test_checksum_rfc1071 () =
  (* The classic example from RFC 1071 §3. *)
  let b = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  check Alcotest.int "rfc1071 example" 0x220d
    (Netpkt.Bytes_util.internet_checksum b ~off:0 ~len:8)

let test_checksum_verifies () =
  let ip =
    Netpkt.Ipv4.make ~protocol:6
      ~src:(Netpkt.Ip4.of_string_exn "192.0.2.1")
      ~dst:(Netpkt.Ip4.of_string_exn "198.51.100.2")
      ()
  in
  let b = Bytes.make 20 '\000' in
  Netpkt.Ipv4.encode_into ip b ~off:0;
  check Alcotest.bool "checksum of encoded header verifies" true
    (Netpkt.Ipv4.checksum_valid b ~off:0)

let test_crc32_check_value () =
  (* CRC-32/ISO-HDLC check value: crc32("123456789") = 0xCBF43926. *)
  let b = Bytes.of_string "123456789" in
  check Alcotest.int64 "crc32 check value" 0xCBF43926L
    (Netpkt.Bytes_util.crc32 b ~off:0 ~len:9)

let test_crc16_check_value () =
  (* CRC-16/ARC check value: 0xBB3D. *)
  let b = Bytes.of_string "123456789" in
  check Alcotest.int64 "crc16 check value" 0xBB3DL
    (Netpkt.Bytes_util.crc16 b ~off:0 ~len:9)

(* --- addresses --- *)

let test_mac_roundtrip () =
  let m = Netpkt.Mac.of_string_exn "aa:bb:cc:dd:ee:0f" in
  check Alcotest.string "mac to_string" "aa:bb:cc:dd:ee:0f" (Netpkt.Mac.to_string m)

let test_mac_bad () =
  check Alcotest.bool "bad mac rejected" true
    (Result.is_error (Netpkt.Mac.of_string "aa:bb:cc:dd:ee"));
  check Alcotest.bool "bad octet rejected" true
    (Result.is_error (Netpkt.Mac.of_string "aa:bb:cc:dd:ee:zz"))

let test_mac_multicast () =
  check Alcotest.bool "broadcast is multicast" true
    (Netpkt.Mac.is_multicast Netpkt.Mac.broadcast);
  check Alcotest.bool "unicast is not" false
    (Netpkt.Mac.is_multicast (Netpkt.Mac.of_string_exn "02:00:00:00:00:01"))

let test_ip_roundtrip () =
  let a = Netpkt.Ip4.of_string_exn "203.0.113.45" in
  check Alcotest.string "ip to_string" "203.0.113.45" (Netpkt.Ip4.to_string a)

let test_ip_bad () =
  check Alcotest.bool "256 rejected" true
    (Result.is_error (Netpkt.Ip4.of_string "1.2.3.256"));
  check Alcotest.bool "short rejected" true
    (Result.is_error (Netpkt.Ip4.of_string "1.2.3"))

let test_prefix_matching () =
  let p = Netpkt.Ip4.prefix_of_string_exn "10.1.0.0/16" in
  check Alcotest.bool "inside" true
    (Netpkt.Ip4.matches p (Netpkt.Ip4.of_string_exn "10.1.200.3"));
  check Alcotest.bool "outside" false
    (Netpkt.Ip4.matches p (Netpkt.Ip4.of_string_exn "10.2.0.1"));
  let all = Netpkt.Ip4.prefix_of_string_exn "0.0.0.0/0" in
  check Alcotest.bool "default route matches anything" true
    (Netpkt.Ip4.matches all (Netpkt.Ip4.of_string_exn "255.255.255.255"))

let test_prefix_normalizes_host_bits () =
  let p = Netpkt.Ip4.prefix (Netpkt.Ip4.of_string_exn "10.1.2.3") 16 in
  check Alcotest.string "host bits cleared" "10.1.0.0/16"
    (Netpkt.Ip4.prefix_to_string p)

(* --- codecs --- *)

let st = Random.State.make [| 99 |]

let random_frame_layers () =
  let src_mac = Netpkt.Mac.random st and dst_mac = Netpkt.Mac.random st in
  let tuple = Netpkt.Flow.random_tuple st in
  Netpkt.Pkt.tcp_flow ~src_mac ~dst_mac ~payload:"hello-dejavu" tuple

let test_pkt_roundtrip_once () =
  let layers = random_frame_layers () in
  let b = Netpkt.Pkt.encode layers in
  match Netpkt.Pkt.decode b with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
      (* Encoding fills length fields, so compare re-encodings. *)
      check Alcotest.bytes "re-encode matches" (Netpkt.Pkt.encode decoded) b

let prop_pkt_roundtrip =
  QCheck.Test.make ~name:"pkt encode/decode roundtrip" ~count:200 QCheck.unit
    (fun () ->
      let layers = random_frame_layers () in
      let b = Netpkt.Pkt.encode layers in
      match Netpkt.Pkt.decode b with
      | Error _ -> false
      | Ok decoded -> Bytes.equal (Netpkt.Pkt.encode decoded) b)

let test_vlan_codec () =
  let v = Netpkt.Vlan.make ~pcp:3 ~vid:1234 Netpkt.Eth.ethertype_ipv4 in
  let b = Bytes.make 4 '\000' in
  Netpkt.Vlan.encode_into v b ~off:0;
  match Netpkt.Vlan.decode b ~off:0 with
  | Error e -> Alcotest.fail e
  | Ok v' -> check Alcotest.bool "vlan roundtrip" true (Netpkt.Vlan.equal v v')

let test_vxlan_codec () =
  let v = Netpkt.Vxlan.make 0xABCDE in
  let b = Bytes.make 8 '\000' in
  Netpkt.Vxlan.encode_into v b ~off:0;
  match Netpkt.Vxlan.decode b ~off:0 with
  | Error e -> Alcotest.fail e
  | Ok v' -> check Alcotest.bool "vxlan roundtrip" true (Netpkt.Vxlan.equal v v')

let test_arp_codec () =
  let a =
    {
      Netpkt.Arp.op = Netpkt.Arp.Request;
      sender_mac = Netpkt.Mac.of_string_exn "02:00:00:00:00:01";
      sender_ip = Netpkt.Ip4.of_string_exn "10.0.0.1";
      target_mac = Netpkt.Mac.zero;
      target_ip = Netpkt.Ip4.of_string_exn "10.0.0.2";
    }
  in
  let b = Bytes.make 28 '\000' in
  Netpkt.Arp.encode_into a b ~off:0;
  match Netpkt.Arp.decode b ~off:0 with
  | Error e -> Alcotest.fail e
  | Ok a' -> check Alcotest.bool "arp roundtrip" true (Netpkt.Arp.equal a a')

let test_decode_truncated () =
  check Alcotest.bool "truncated eth rejected" true
    (Result.is_error (Netpkt.Pkt.decode (Bytes.make 5 '\000')))

let test_udp_vxlan_stack () =
  let inner =
    Netpkt.Pkt.tcp_flow
      ~src_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:11")
      ~dst_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:22")
      {
        Netpkt.Flow.src = Netpkt.Ip4.of_string_exn "172.16.0.1";
        dst = Netpkt.Ip4.of_string_exn "172.16.0.2";
        proto = Netpkt.Ipv4.proto_tcp;
        src_port = 1000;
        dst_port = 2000;
      }
  in
  let outer =
    [
      Netpkt.Pkt.Eth
        (Netpkt.Eth.make
           ~dst:(Netpkt.Mac.of_string_exn "02:00:00:00:00:33")
           Netpkt.Eth.ethertype_ipv4);
      Netpkt.Pkt.Ipv4
        (Netpkt.Ipv4.make ~protocol:Netpkt.Ipv4.proto_udp
           ~src:(Netpkt.Ip4.of_string_exn "192.0.2.1")
           ~dst:(Netpkt.Ip4.of_string_exn "192.0.2.2")
           ());
      Netpkt.Pkt.Udp
        (Netpkt.Udp.make ~src_port:49152 ~dst_port:Netpkt.Udp.port_vxlan ());
      Netpkt.Pkt.Vxlan (Netpkt.Vxlan.make 5001);
    ]
    @ inner
  in
  let b = Netpkt.Pkt.encode outer in
  match Netpkt.Pkt.decode b with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
      check Alcotest.bool "vxlan stack roundtrip" true
        (Bytes.equal (Netpkt.Pkt.encode decoded) b)

(* --- pcap --- *)

let test_pcap_roundtrip () =
  let st = Random.State.make [| 5 |] in
  let packets =
    List.init 5 (fun i ->
        Netpkt.Pcap.packet ~ts_sec:(1700000000 + i) ~ts_usec:(i * 100)
          (Netpkt.Pkt.encode
             (Netpkt.Pkt.tcp_flow ~payload:(String.make i 'x')
                ~src_mac:(Netpkt.Mac.random st) ~dst_mac:(Netpkt.Mac.random st)
                (Netpkt.Flow.random_tuple st))))
  in
  match Netpkt.Pcap.of_bytes (Netpkt.Pcap.to_bytes packets) with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
      check Alcotest.int "record count" 5 (List.length decoded);
      List.iter2
        (fun a b ->
          check Alcotest.int "ts_sec" a.Netpkt.Pcap.ts_sec b.Netpkt.Pcap.ts_sec;
          check Alcotest.bytes "frame" a.Netpkt.Pcap.frame b.Netpkt.Pcap.frame)
        packets decoded

let test_pcap_file_roundtrip () =
  let path = Filename.temp_file "dejavu" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let packets = [ Netpkt.Pcap.packet (Bytes.of_string "0123456789abcd") ] in
      Netpkt.Pcap.write_file path packets;
      match Netpkt.Pcap.read_file path with
      | Error e -> Alcotest.fail e
      | Ok [ p ] ->
          check Alcotest.bytes "file roundtrip" (Bytes.of_string "0123456789abcd")
            p.Netpkt.Pcap.frame
      | Ok _ -> Alcotest.fail "wrong record count")

let test_pcap_rejects_garbage () =
  check Alcotest.bool "bad magic rejected" true
    (Result.is_error (Netpkt.Pcap.of_bytes (Bytes.make 40 'z')));
  check Alcotest.bool "truncated rejected" true
    (Result.is_error (Netpkt.Pcap.of_bytes (Bytes.make 10 '\000')))

(* --- flows --- *)

let test_flow_deterministic () =
  let a = Netpkt.Flow.generate Netpkt.Flow.default_spec in
  let b = Netpkt.Flow.generate Netpkt.Flow.default_spec in
  check Alcotest.bool "same spec, same flows" true
    (List.for_all2 Netpkt.Flow.equal_five_tuple a b)

let test_flow_distinct () =
  let flows = Netpkt.Flow.generate { Netpkt.Flow.default_spec with n_flows = 200 } in
  let sorted = List.sort_uniq Netpkt.Flow.compare_five_tuple flows in
  check Alcotest.int "all distinct" 200 (List.length sorted)

let test_flow_subnet () =
  let spec = Netpkt.Flow.default_spec in
  let flows = Netpkt.Flow.generate spec in
  check Alcotest.bool "sources in client subnet" true
    (List.for_all
       (fun t -> Netpkt.Ip4.matches spec.Netpkt.Flow.client_subnet t.Netpkt.Flow.src)
       flows)

let test_hash_matches_layout () =
  (* The flow hash must equal a CRC32 over the 13-byte field layout. *)
  let t =
    {
      Netpkt.Flow.src = Netpkt.Ip4.of_string_exn "1.2.3.4";
      dst = Netpkt.Ip4.of_string_exn "5.6.7.8";
      proto = 6;
      src_port = 0x1234;
      dst_port = 80;
    }
  in
  let b = Bytes.of_string "\x01\x02\x03\x04\x05\x06\x07\x08\x06\x12\x34\x00\x50" in
  check Alcotest.int64 "hash layout" (Netpkt.Bytes_util.crc32 b ~off:0 ~len:13)
    (Netpkt.Flow.hash_five_tuple t)

let () =
  Alcotest.run "netpkt"
    [
      ( "bytes_util",
        [
          Alcotest.test_case "bit roundtrip" `Quick test_bits_roundtrip_simple;
          Alcotest.test_case "no bleed" `Quick test_bits_no_bleed;
          Alcotest.test_case "range errors" `Quick test_bits_out_of_range;
          qtest prop_bits_roundtrip;
          qtest prop_bits_preserves_neighbors;
          Alcotest.test_case "rfc1071 checksum" `Quick test_checksum_rfc1071;
          Alcotest.test_case "ipv4 checksum verifies" `Quick test_checksum_verifies;
          Alcotest.test_case "crc32 check value" `Quick test_crc32_check_value;
          Alcotest.test_case "crc16 check value" `Quick test_crc16_check_value;
        ] );
      ( "addresses",
        [
          Alcotest.test_case "mac roundtrip" `Quick test_mac_roundtrip;
          Alcotest.test_case "mac bad input" `Quick test_mac_bad;
          Alcotest.test_case "mac multicast bit" `Quick test_mac_multicast;
          Alcotest.test_case "ip roundtrip" `Quick test_ip_roundtrip;
          Alcotest.test_case "ip bad input" `Quick test_ip_bad;
          Alcotest.test_case "prefix matching" `Quick test_prefix_matching;
          Alcotest.test_case "prefix normalization" `Quick
            test_prefix_normalizes_host_bits;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "frame roundtrip" `Quick test_pkt_roundtrip_once;
          qtest prop_pkt_roundtrip;
          Alcotest.test_case "vlan" `Quick test_vlan_codec;
          Alcotest.test_case "vxlan" `Quick test_vxlan_codec;
          Alcotest.test_case "arp" `Quick test_arp_codec;
          Alcotest.test_case "truncated" `Quick test_decode_truncated;
          Alcotest.test_case "udp/vxlan stack" `Quick test_udp_vxlan_stack;
        ] );
      ( "pcap",
        [
          Alcotest.test_case "roundtrip" `Quick test_pcap_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_pcap_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_pcap_rejects_garbage;
        ] );
      ( "flows",
        [
          Alcotest.test_case "deterministic" `Quick test_flow_deterministic;
          Alcotest.test_case "distinct" `Quick test_flow_distinct;
          Alcotest.test_case "subnet" `Quick test_flow_subnet;
          Alcotest.test_case "hash layout" `Quick test_hash_matches_layout;
        ] );
    ]
