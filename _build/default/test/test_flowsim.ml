(* The contention simulator must reproduce the §4 feedback-queue
   analysis (Fig. 8a): measured throughput vs the analytic fixed point. *)

open Dejavu_core

let check = Alcotest.check

let close ?(tol = 0.04) a b = abs_float (a -. b) < tol

let test_no_recirc_full_rate () =
  let s = Asic.Flowsim.run (Asic.Flowsim.default ~n_recircs:0) in
  check Alcotest.bool "k=0 delivers T" true
    (close s.Asic.Flowsim.throughput_fraction 1.0)

let test_one_recirc_full_rate () =
  let s = Asic.Flowsim.run (Asic.Flowsim.default ~n_recircs:1) in
  check Alcotest.bool "k=1 delivers T (paper: 1-recirc path has throughput T)"
    true
    (close s.Asic.Flowsim.throughput_fraction 1.0)

let test_two_recircs_golden () =
  let s = Asic.Flowsim.run (Asic.Flowsim.default ~n_recircs:2) in
  (* Paper: 0.38T after the x = 0.62T feedback step. *)
  check Alcotest.bool
    (Printf.sprintf "k=2 ~ 0.38T (got %.3f)" s.Asic.Flowsim.throughput_fraction)
    true
    (close s.Asic.Flowsim.throughput_fraction (Model.feedback_throughput 2))

let test_three_recircs () =
  let s = Asic.Flowsim.run (Asic.Flowsim.default ~n_recircs:3) in
  (* Paper: 0.16T. *)
  check Alcotest.bool
    (Printf.sprintf "k=3 ~ 0.16T (got %.3f)" s.Asic.Flowsim.throughput_fraction)
    true
    (close s.Asic.Flowsim.throughput_fraction (Model.feedback_throughput 3))

let test_sweep_monotone_decreasing () =
  let sweep = Asic.Flowsim.sweep [ 1; 2; 3; 4; 5 ] in
  let fractions = List.map (fun (_, s) -> s.Asic.Flowsim.throughput_fraction) sweep in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 0.01 && decreasing rest
    | _ -> true
  in
  check Alcotest.bool "throughput decreases with recirculations" true
    (decreasing fractions);
  (* Super-linear: the drop from 1->3 recircs exceeds the linear 2/3 cut. *)
  let at k = List.assoc k (List.map (fun (k, s) -> (k, s.Asic.Flowsim.throughput_fraction)) sweep) in
  check Alcotest.bool "super-linear degradation" true (at 3 < at 1 /. 3.0)

let test_sim_matches_model_within_tolerance () =
  List.iter
    (fun k ->
      let s = Asic.Flowsim.run (Asic.Flowsim.default ~n_recircs:k) in
      let predicted = Model.feedback_throughput k in
      check Alcotest.bool
        (Printf.sprintf "k=%d: sim %.3f vs model %.3f" k
           s.Asic.Flowsim.throughput_fraction predicted)
        true
        (close ~tol:0.05 s.Asic.Flowsim.throughput_fraction predicted))
    [ 0; 1; 2; 3; 4 ]

let test_accounting_consistent () =
  let s = Asic.Flowsim.run (Asic.Flowsim.default ~n_recircs:2) in
  check Alcotest.bool "delivered + dropped <= offered (plus warmup carryover)"
    true
    (s.Asic.Flowsim.delivered + s.Asic.Flowsim.dropped
    <= s.Asic.Flowsim.offered + 2 * (Asic.Flowsim.default ~n_recircs:2).Asic.Flowsim.buffer_pkts
       + (Asic.Flowsim.default ~n_recircs:2).Asic.Flowsim.pkts_per_slot * 2)

let test_deterministic () =
  let a = Asic.Flowsim.run (Asic.Flowsim.default ~n_recircs:2) in
  let b = Asic.Flowsim.run (Asic.Flowsim.default ~n_recircs:2) in
  check Alcotest.int "same seed, same result" a.Asic.Flowsim.delivered
    b.Asic.Flowsim.delivered

let () =
  Alcotest.run "flowsim"
    [
      ( "throughput",
        [
          Alcotest.test_case "k=0" `Quick test_no_recirc_full_rate;
          Alcotest.test_case "k=1" `Quick test_one_recirc_full_rate;
          Alcotest.test_case "k=2 golden" `Quick test_two_recircs_golden;
          Alcotest.test_case "k=3" `Quick test_three_recircs;
          Alcotest.test_case "sweep monotone" `Quick test_sweep_monotone_decreasing;
          Alcotest.test_case "sim vs model" `Quick
            test_sim_matches_model_within_tolerance;
          Alcotest.test_case "accounting" `Quick test_accounting_consistent;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
    ]
