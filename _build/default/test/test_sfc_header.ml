(* SFC header (Fig. 3) codec tests. *)

open Dejavu_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let sample =
  {
    Sfc_header.service_path_id = 0x1234;
    service_index = 7;
    in_port = 3;
    out_port = 17;
    resubmit = true;
    recirc = false;
    drop = false;
    mirror = true;
    to_cpu = false;
    context = [| (1, 0xBEEF); (2, 42); (0, 0); (4, 0x7777) |];
    next_protocol = 1;
  }

let test_size () =
  check Alcotest.int "20 bytes on the wire" 20
    (Bytes.length (Sfc_header.encode sample));
  check Alcotest.int "decl is byte-aligned at 20" 20
    (P4ir.Hdr.byte_size Sfc_header.decl)

let test_roundtrip () =
  match Sfc_header.decode (Sfc_header.encode sample) ~off:0 with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
      check Alcotest.bool "encode/decode roundtrip" true
        (Sfc_header.equal sample decoded)

let gen_header =
  QCheck.Gen.(
    map
      (fun ((path, idx, inp, outp), (flags, ctx, proto)) ->
        {
          Sfc_header.service_path_id = path land 0xffff;
          service_index = idx land 0xff;
          in_port = inp land 0x1ff;
          out_port = outp land 0x1ff;
          resubmit = flags land 1 = 1;
          recirc = flags land 2 = 2;
          drop = flags land 4 = 4;
          mirror = flags land 8 = 8;
          to_cpu = flags land 16 = 16;
          context =
            Array.init 4 (fun i ->
                let v = (ctx lsr (i * 6)) land 0x3f in
                (v land 0xf, v * 97 land 0xffff));
          next_protocol = proto land 0xff;
        })
      (pair (quad nat nat nat nat) (triple nat nat nat)))

let prop_roundtrip =
  QCheck.Test.make ~name:"random headers roundtrip" ~count:300
    (QCheck.make gen_header)
    (fun h ->
      match Sfc_header.decode (Sfc_header.encode h) ~off:0 with
      | Error _ -> false
      | Ok decoded -> Sfc_header.equal h decoded)

let prop_phv_roundtrip =
  QCheck.Test.make ~name:"phv roundtrip" ~count:300 (QCheck.make gen_header)
    (fun h ->
      let phv = P4ir.Phv.create [] in
      Sfc_header.to_phv h phv;
      match Sfc_header.of_phv phv with
      | None -> false
      | Some h' -> Sfc_header.equal h h')

let test_of_phv_invalid () =
  let phv = P4ir.Phv.create [ Sfc_header.decl ] in
  check Alcotest.bool "invalid header -> None" true
    (Sfc_header.of_phv phv = None)

let test_context_lookup () =
  check Alcotest.(option int) "tenant ctx" (Some 0xBEEF)
    (Sfc_header.find_context sample 1);
  check Alcotest.(option int) "missing key" None (Sfc_header.find_context sample 9);
  check Alcotest.(option int) "zero key never matches" None
    (Sfc_header.find_context sample 0)

let test_decode_truncated () =
  check Alcotest.bool "truncated rejected" true
    (Result.is_error (Sfc_header.decode (Bytes.make 10 '\000') ~off:0))

let test_next_protocol_position () =
  (* The wire position of next_protocol must match what Netpkt.Pkt's
     decoder peeks at (byte 19). *)
  let b = Sfc_header.encode { sample with next_protocol = 0xAB } in
  check Alcotest.int "byte 19" 0xAB (Netpkt.Bytes_util.get_uint8 b 19)

let () =
  Alcotest.run "sfc_header"
    [
      ( "codec",
        [
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          qtest prop_roundtrip;
          qtest prop_phv_roundtrip;
          Alcotest.test_case "invalid phv" `Quick test_of_phv_invalid;
          Alcotest.test_case "context lookup" `Quick test_context_lookup;
          Alcotest.test_case "truncated" `Quick test_decode_truncated;
          Alcotest.test_case "next_protocol position" `Quick
            test_next_protocol_position;
        ] );
    ]
