(* Parser graph tests: parsing real frames with the base topology,
   deparsing, validation errors. *)

open P4ir

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let base = Dejavu_core.Net_hdrs.base_parser ~with_vlan:true ~name:"test" ()

let mac = Netpkt.Mac.of_string_exn
let ip = Netpkt.Ip4.of_string_exn

let tuple =
  {
    Netpkt.Flow.src = ip "192.0.2.10";
    dst = ip "10.0.1.20";
    proto = Netpkt.Ipv4.proto_tcp;
    src_port = 4000;
    dst_port = 80;
  }

let plain_frame ?(payload = "") () =
  Netpkt.Pkt.encode
    (Netpkt.Pkt.tcp_flow ~payload ~src_mac:(mac "02:00:00:00:00:01")
       ~dst_mac:(mac "02:00:00:00:00:02") tuple)

let test_base_parser_validates () =
  match Parser_graph.validate base with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_parse_plain_tcp () =
  let phv = Phv.create [] in
  match Parser_graph.parse base (plain_frame ()) phv with
  | Error e -> Alcotest.fail e
  | Ok consumed ->
      check Alcotest.int "eth+ip+tcp consumed" 54 consumed;
      check Alcotest.bool "eth valid" true (Phv.is_valid phv "eth");
      check Alcotest.bool "ipv4 valid" true (Phv.is_valid phv "ipv4");
      check Alcotest.bool "tcp valid" true (Phv.is_valid phv "tcp");
      check Alcotest.bool "udp invalid" false (Phv.is_valid phv "udp");
      check Alcotest.bool "sfc invalid" false (Phv.is_valid phv "sfc");
      check Alcotest.int "dst ip extracted" 0x0A000114
        (Phv.get_int phv Dejavu_core.Net_hdrs.ip_dst);
      check Alcotest.int "dst port extracted" 80
        (Phv.get_int phv Dejavu_core.Net_hdrs.tcp_dport)

let test_parse_sfc_frame () =
  let sfc =
    { Dejavu_core.Sfc_header.default with service_path_id = 10; service_index = 2 }
  in
  let frame =
    Netpkt.Pkt.encode
      ([
         Netpkt.Pkt.Eth
           (Netpkt.Eth.make ~dst:(mac "02:00:00:00:00:02")
              Netpkt.Eth.ethertype_sfc);
         Netpkt.Pkt.Sfc_raw (Dejavu_core.Sfc_header.encode sfc);
       ]
      @ List.tl
          (Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:00:00:00:00:01")
             ~dst_mac:(mac "02:00:00:00:00:02") tuple))
  in
  let phv = Phv.create [] in
  match Parser_graph.parse base frame phv with
  | Error e -> Alcotest.fail e
  | Ok consumed ->
      check Alcotest.int "eth+sfc+ip+tcp" 74 consumed;
      check Alcotest.bool "sfc valid" true (Phv.is_valid phv "sfc");
      check Alcotest.int "path id" 10
        (Phv.get_int phv Dejavu_core.Sfc_header.service_path_id);
      check Alcotest.bool "tcp under sfc" true (Phv.is_valid phv "tcp")

let test_parse_unknown_ethertype_accepts () =
  let b = plain_frame () in
  Netpkt.Bytes_util.set_uint16 b 12 0x9999;
  let phv = Phv.create [] in
  match Parser_graph.parse base b phv with
  | Error e -> Alcotest.fail e
  | Ok consumed ->
      check Alcotest.int "only eth consumed" 14 consumed;
      check Alcotest.bool "ipv4 not parsed" false (Phv.is_valid phv "ipv4")

let test_parse_truncated_fails () =
  let b = Bytes.sub (plain_frame ()) 0 20 in
  let phv = Phv.create [] in
  check Alcotest.bool "truncated ipv4 rejected" true
    (Result.is_error (Parser_graph.parse base b phv))

let test_parse_deparse_roundtrip () =
  let frame = plain_frame ~payload:"abcdef" () in
  let phv = Phv.create [] in
  match Parser_graph.parse base frame phv with
  | Error e -> Alcotest.fail e
  | Ok consumed ->
      let payload = Bytes.sub frame consumed (Bytes.length frame - consumed) in
      let out =
        Parser_graph.deparse ~order:Dejavu_core.Net_hdrs.deparse_order phv ~payload
      in
      check Alcotest.bytes "deparse inverts parse" frame out

let prop_parse_deparse_roundtrip =
  let st = Random.State.make [| 4 |] in
  QCheck.Test.make ~name:"parse/deparse roundtrip on random flows" ~count:150
    QCheck.unit (fun () ->
      let tuple = Netpkt.Flow.random_tuple st in
      let frame =
        Netpkt.Pkt.encode
          (Netpkt.Pkt.tcp_flow ~payload:"xyz" ~src_mac:(Netpkt.Mac.random st)
             ~dst_mac:(Netpkt.Mac.random st) tuple)
      in
      let phv = Phv.create [] in
      match Parser_graph.parse base frame phv with
      | Error _ -> false
      | Ok consumed ->
          let payload = Bytes.sub frame consumed (Bytes.length frame - consumed) in
          Bytes.equal frame
            (Parser_graph.deparse ~order:Dejavu_core.Net_hdrs.deparse_order phv
               ~payload))

let test_validate_catches_bad_target () =
  let bad =
    {
      Parser_graph.name = "bad";
      decls = [ Dejavu_core.Net_hdrs.eth ];
      start = Parser_graph.Goto "eth@0";
      states =
        [
          {
            Parser_graph.id = "eth@0";
            header = "eth";
            offset = 0;
            select =
              Some
                {
                  Parser_graph.on = [ Dejavu_core.Net_hdrs.eth_ethertype ];
                  cases =
                    [ { Parser_graph.values = [ 1L ]; next = Parser_graph.Goto "ghost" } ];
                  default = Parser_graph.Accept;
                };
          };
        ];
    }
  in
  check Alcotest.bool "missing target detected" true
    (Result.is_error (Parser_graph.validate bad))

let test_validate_catches_bad_offset () =
  let bad =
    {
      Parser_graph.name = "bad";
      decls = [ Dejavu_core.Net_hdrs.eth; Dejavu_core.Net_hdrs.ipv4 ];
      start = Parser_graph.Goto "eth@0";
      states =
        [
          {
            Parser_graph.id = "eth@0";
            header = "eth";
            offset = 0;
            select =
              Some
                {
                  Parser_graph.on = [ Dejavu_core.Net_hdrs.eth_ethertype ];
                  cases =
                    [
                      {
                        Parser_graph.values = [ 0x0800L ];
                        next = Parser_graph.Goto "ipv4@20";
                      };
                    ];
                  default = Parser_graph.Accept;
                };
          };
          (* Wrong: eth is 14 bytes, so ipv4 must start at 14. *)
          { Parser_graph.id = "ipv4@20"; header = "ipv4"; offset = 20; select = None };
        ];
    }
  in
  check Alcotest.bool "offset mismatch detected" true
    (Result.is_error (Parser_graph.validate bad))

let test_reachable () =
  let ids = Parser_graph.reachable base in
  check Alcotest.bool "eth first" true (List.hd ids = "eth@0");
  check Alcotest.bool "sfc reachable" true (List.mem "sfc@14" ids);
  check Alcotest.bool "vlan-under-sfc reachable" true (List.mem "vlan@34" ids)

let test_deparse_skips_invalid () =
  let phv = Phv.create [ Dejavu_core.Net_hdrs.eth; Dejavu_core.Net_hdrs.ipv4 ] in
  Phv.set_valid phv "eth";
  let out =
    Parser_graph.deparse ~order:[ "eth"; "ipv4" ] phv ~payload:Bytes.empty
  in
  check Alcotest.int "only eth emitted" 14 (Bytes.length out)

let () =
  Alcotest.run "parser_graph"
    [
      ( "parse",
        [
          Alcotest.test_case "base validates" `Quick test_base_parser_validates;
          Alcotest.test_case "plain tcp" `Quick test_parse_plain_tcp;
          Alcotest.test_case "sfc frame" `Quick test_parse_sfc_frame;
          Alcotest.test_case "unknown ethertype accepts" `Quick
            test_parse_unknown_ethertype_accepts;
          Alcotest.test_case "truncated fails" `Quick test_parse_truncated_fails;
        ] );
      ( "deparse",
        [
          Alcotest.test_case "roundtrip" `Quick test_parse_deparse_roundtrip;
          qtest prop_parse_deparse_roundtrip;
          Alcotest.test_case "skips invalid" `Quick test_deparse_skips_invalid;
        ] );
      ( "validate",
        [
          Alcotest.test_case "bad target" `Quick test_validate_catches_bad_target;
          Alcotest.test_case "bad offset" `Quick test_validate_catches_bad_offset;
          Alcotest.test_case "reachable" `Quick test_reachable;
        ] );
    ]
