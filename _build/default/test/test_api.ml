(* Validation and error-path coverage for the public API: malformed
   chains, layouts, NFs and compiler inputs must be rejected with real
   messages, not crash later. *)

open Dejavu_core

let check = Alcotest.check

let pfx = Netpkt.Ip4.prefix_of_string_exn

(* --- Chain --- *)

let test_chain_validation () =
  Alcotest.check_raises "empty chain"
    (Invalid_argument "Chain.make x: empty chain") (fun () ->
      ignore (Chain.make ~path_id:1 ~name:"x" ~nfs:[] ~exit_port:1 ()));
  Alcotest.check_raises "duplicate NFs"
    (Invalid_argument "Chain.make x: duplicate NFs in chain") (fun () ->
      ignore (Chain.make ~path_id:1 ~name:"x" ~nfs:[ "a"; "a" ] ~exit_port:1 ()));
  Alcotest.check_raises "path id 0"
    (Invalid_argument "Chain.make x: path id 0 not in 1..65535") (fun () ->
      ignore (Chain.make ~path_id:0 ~name:"x" ~nfs:[ "a" ] ~exit_port:1 ()));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Chain.make x: weight must be positive") (fun () ->
      ignore
        (Chain.make ~path_id:1 ~name:"x" ~nfs:[ "a" ] ~weight:(-1.0) ~exit_port:1 ()))

let test_chain_helpers () =
  let c = Chain.make ~path_id:1 ~name:"c" ~nfs:[ "a"; "b"; "c" ] ~exit_port:1 () in
  check Alcotest.int "length" 3 (Chain.length c);
  check Alcotest.(option int) "position" (Some 1) (Chain.position c "b");
  check Alcotest.(option int) "missing" None (Chain.position c "z");
  let c2 = Chain.make ~path_id:2 ~name:"c2" ~nfs:[ "b"; "d" ] ~exit_port:1 () in
  check Alcotest.(list string) "all_nfs dedups in order" [ "a"; "b"; "c"; "d" ]
    (Chain.all_nfs [ c; c2 ])

let test_chain_weight_normalization () =
  let mk w pid = Chain.make ~path_id:pid ~name:"c" ~nfs:[ "a" ] ~weight:w ~exit_port:1 () in
  let normalized = Chain.normalize_weights [ mk 2.0 1; mk 6.0 2 ] in
  check Alcotest.(float 1e-9) "weights sum to 1" 1.0
    (List.fold_left (fun acc (c : Chain.t) -> acc +. c.Chain.weight) 0.0 normalized);
  check Alcotest.(float 1e-9) "proportions kept" 0.25
    (List.hd normalized).Chain.weight

let test_chain_duplicate_path_ids_rejected () =
  let mk pid = Chain.make ~path_id:pid ~name:"c" ~nfs:[ "a" ] ~exit_port:1 () in
  let registry = [ ("a", fun () -> assert false) ] in
  check Alcotest.bool "duplicate path ids" true
    (Result.is_error (Chain.validate_against registry [ mk 5; mk 5 ]));
  check Alcotest.bool "unknown NF" true
    (Result.is_error
       (Chain.validate_against []
          [ Chain.make ~path_id:1 ~name:"c" ~nfs:[ "ghost" ] ~exit_port:1 () ]))

(* --- Layout --- *)

let ing0 = { Asic.Pipelet.pipeline = 0; kind = Asic.Pipelet.Ingress }
let eg0 = { Asic.Pipelet.pipeline = 0; kind = Asic.Pipelet.Egress }

let test_layout_validation () =
  check Alcotest.bool "duplicate NF across pipelets" true
    (Result.is_error
       (Layout.validate
          [ (ing0, [ Layout.Seq [ "a" ] ]); (eg0, [ Layout.Seq [ "a" ] ]) ]));
  check Alcotest.bool "empty group" true
    (Result.is_error (Layout.validate [ (ing0, [ Layout.Seq [] ]) ]));
  check Alcotest.bool "well-formed accepted" true
    (Result.is_ok
       (Layout.validate
          [ (ing0, [ Layout.Seq [ "a" ]; Layout.Par [ "b"; "c" ] ]) ]))

let test_layout_positions () =
  let layout = [ Layout.Seq [ "a"; "b" ]; Layout.Par [ "c"; "d" ] ] in
  check Alcotest.(option (pair int int)) "seq member" (Some (0, 1))
    (Layout.position layout "b");
  check Alcotest.(option (pair int int)) "par member" (Some (1, 0))
    (Layout.position layout "c");
  check Alcotest.(option (pair int int)) "absent" None (Layout.position layout "z");
  check Alcotest.bool "group kinds" true
    (Layout.group_kind layout 0 = `Seq && Layout.group_kind layout 1 = `Par)

let test_layout_stage_demand () =
  let resources_of = function
    | "big" -> { P4ir.Resources.zero with P4ir.Resources.stages = 5 }
    | _ -> { P4ir.Resources.zero with P4ir.Resources.stages = 2 }
  in
  check Alcotest.int "seq sums" 7
    (Layout.stage_demand resources_of [ Layout.Seq [ "big"; "x" ] ]);
  check Alcotest.int "par maxes" 5
    (Layout.stage_demand resources_of [ Layout.Par [ "big"; "x" ] ])

(* --- Nf --- *)

let test_nf_validation () =
  let parser = Net_hdrs.base_parser ~name:"t" () in
  let t () =
    P4ir.Table.make ~name:"t"
      ~keys:[ { P4ir.Table.field = Net_hdrs.ip_dst; kind = P4ir.Table.Exact; width = 32 } ]
      ~actions:[ P4ir.Action.no_op ] ~default:("NoAction", []) ()
  in
  Alcotest.check_raises "duplicate tables"
    (Invalid_argument "Nf.make x: duplicate table names") (fun () ->
      ignore
        (Nf.make ~name:"x" ~description:"" ~parser ~tables:[ t (); t () ]
           ~body:[ P4ir.Control.Apply "t" ] ()));
  Alcotest.check_raises "unknown table in body"
    (Invalid_argument "Nf.make x: control x_control: unknown table ghost")
    (fun () ->
      ignore
        (Nf.make ~name:"x" ~description:"" ~parser ~tables:[]
           ~body:[ P4ir.Control.Apply "ghost" ] ()));
  Alcotest.check_raises "unknown register"
    (Invalid_argument "Nf.make x: unknown register nope") (fun () ->
      ignore
        (Nf.make ~name:"x" ~description:"" ~parser ~tables:[]
           ~body:
             [
               P4ir.Control.Run
                 [
                   P4ir.Action.Reg_write
                     ("nope", P4ir.Expr.const ~width:8 0, P4ir.Expr.const ~width:8 0);
                 ];
             ]
           ()))

let test_nf_registry () =
  let registry = Nflib.Catalog.registry () in
  check Alcotest.bool "lb instantiates" true
    (Result.is_ok (Nf.instantiate registry "lb"));
  check Alcotest.bool "unknown NF reported" true
    (Result.is_error (Nf.instantiate registry "nope"));
  (* Fresh instances never share table state. *)
  let a = Result.get_ok (Nf.instantiate registry "lb") in
  let b = Result.get_ok (Nf.instantiate registry "lb") in
  let ta = Option.get (Nf.find_table a Nflib.Lb.table_name) in
  Result.get_ok
    (Nflib.Lb.install_session ta
       {
         Netpkt.Flow.src = Netpkt.Ip4.of_string_exn "1.1.1.1";
         dst = Netpkt.Ip4.of_string_exn "2.2.2.2";
         proto = 6;
         src_port = 1;
         dst_port = 2;
       }
       (Netpkt.Ip4.of_string_exn "9.9.9.9"));
  let tb = Option.get (Nf.find_table b Nflib.Lb.table_name) in
  check Alcotest.int "instance b unaffected" 0 (P4ir.Table.size tb)

(* --- Compiler --- *)

let test_compiler_rejects_bad_inputs () =
  let registry = Nflib.Catalog.registry () in
  let bad_chain =
    [ Chain.make ~path_id:1 ~name:"c" ~nfs:[ "ghost" ] ~exit_port:1 () ]
  in
  check Alcotest.bool "unknown NF in chain" true
    (Result.is_error
       (Compiler.compile (Compiler.default_input ~registry ~chains:bad_chain ())));
  (* Looping back the entry pipeline is a configuration error. *)
  let chains = Nflib.Catalog.chains ~exit_port:1 in
  Alcotest.check_raises "entry pipeline loopback"
    (Invalid_argument "compiler: cannot loop back the entry pipeline") (fun () ->
      ignore
        (Compiler.compile
           (Compiler.default_input ~registry ~chains ~loopback_pipelines:[ 0 ] ())))

let test_compiler_invalid_mirror_port () =
  let registry = Nflib.Catalog.registry () in
  let chains = Nflib.Catalog.chains ~exit_port:1 in
  check Alcotest.bool "mirror port validated" true
    (Result.is_error
       (Compiler.compile
          (Compiler.default_input ~registry ~chains ~mirror_port:999 ())))

let test_compiler_exit_port_on_loopback_pipeline () =
  (* Exit on pipeline 1 while pipeline 1 is all-loopback: the traversal
     may route it, but the emitted port would loop forever — the chain
     becomes unroutable or loops; either way compile must not produce a
     silently broken deployment. The compile itself currently fails in
     routing (unroutable) or succeeds with exit on a loopback port; we
     assert the packet never silently disappears. *)
  let registry = Nflib.Catalog.registry () in
  let chains = Nflib.Catalog.chains ~exit_port:20 (* pipeline 1 *) in
  match Compiler.compile (Compiler.default_input ~registry ~chains ()) with
  | Error _ -> ()
  | Ok compiled -> (
      let rt = Runtime.create compiled in
      Nflib.Catalog.attach_handlers rt compiled;
      let pkt =
        Netpkt.Pkt.tcp_flow
          ~src_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:01")
          ~dst_mac:(Netpkt.Mac.of_string_exn "02:00:00:00:00:02")
          {
            Netpkt.Flow.src = Netpkt.Ip4.of_string_exn "203.0.113.1";
            dst = Netpkt.Ip4.of_string_exn "10.0.3.4";
            proto = 6;
            src_port = 1;
            dst_port = 80;
          }
      in
      match Ptf.send rt ~in_port:0 pkt with
      | Ok _ -> () (* routed somewhere observable *)
      | Error e ->
          check Alcotest.bool "loop detected, not silent" true
            (String.length e > 0))

(* --- Spec / Cluster bounds --- *)

let test_spec_bounds () =
  let spec = Asic.Spec.wedge_100b in
  Alcotest.check_raises "port out of range"
    (Invalid_argument "Spec.port_pipeline: port 32 out of range") (fun () ->
      ignore (Asic.Spec.port_pipeline spec 32));
  Alcotest.check_raises "port mode on recirc port"
    (Invalid_argument "Port.set_mode: 256 is not an Ethernet port") (fun () ->
      Asic.Port.set_mode (Asic.Port.make spec) 256 Asic.Port.Loopback)

let test_cluster_bounds () =
  Alcotest.check_raises "zero switches"
    (Invalid_argument "Cluster.make: need at least one switch") (fun () ->
      ignore (Cluster.make ~spec:Asic.Spec.wedge_100b ~n_switches:0 ()))

let test_register_bounds () =
  Alcotest.check_raises "zero size"
    (Invalid_argument "Register.make: size must be positive") (fun () ->
      ignore (P4ir.Register.make ~name:"r" ~size:0 ~width:8));
  Alcotest.check_raises "bad width"
    (Invalid_argument "Register.make: width not in 1..64") (fun () ->
      ignore (P4ir.Register.make ~name:"r" ~size:8 ~width:65))

let () =
  ignore pfx;
  Alcotest.run "api"
    [
      ( "chain",
        [
          Alcotest.test_case "validation" `Quick test_chain_validation;
          Alcotest.test_case "helpers" `Quick test_chain_helpers;
          Alcotest.test_case "weight normalization" `Quick
            test_chain_weight_normalization;
          Alcotest.test_case "duplicate ids" `Quick
            test_chain_duplicate_path_ids_rejected;
        ] );
      ( "layout",
        [
          Alcotest.test_case "validation" `Quick test_layout_validation;
          Alcotest.test_case "positions" `Quick test_layout_positions;
          Alcotest.test_case "stage demand" `Quick test_layout_stage_demand;
        ] );
      ( "nf",
        [
          Alcotest.test_case "validation" `Quick test_nf_validation;
          Alcotest.test_case "registry isolation" `Quick test_nf_registry;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "bad inputs" `Quick test_compiler_rejects_bad_inputs;
          Alcotest.test_case "mirror port" `Quick test_compiler_invalid_mirror_port;
          Alcotest.test_case "exit on loopback pipeline" `Quick
            test_compiler_exit_port_on_loopback_pipeline;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "spec" `Quick test_spec_bounds;
          Alcotest.test_case "cluster" `Quick test_cluster_bounds;
          Alcotest.test_case "register" `Quick test_register_bounds;
        ] );
    ]
