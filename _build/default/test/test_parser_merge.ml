(* Generic-parser merging tests (§3): vertex unification by
   (header_type, offset), select union, conflict detection. *)

open Dejavu_core
open P4ir

let check = Alcotest.check

let p_plain = Net_hdrs.base_parser ~name:"plain" ()
let p_vlan = Net_hdrs.base_parser ~with_vlan:true ~name:"vlan" ()
let p_nol4 = Net_hdrs.base_parser ~with_l4:false ~name:"nol4" ()

let n_states (p : Parser_graph.t) = List.length p.Parser_graph.states

let test_merge_self_idempotent () =
  match Parser_merge.merge ~name:"m" [ p_plain; p_plain ] with
  | Error c -> Alcotest.fail (Parser_merge.conflict_message c)
  | Ok merged ->
      check Alcotest.int "same vertex count as one copy" (n_states p_plain)
        (n_states merged);
      (match Parser_graph.validate merged with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_merge_adds_vlan_branches () =
  match Parser_merge.merge ~name:"m" [ p_plain; p_vlan ] with
  | Error c -> Alcotest.fail (Parser_merge.conflict_message c)
  | Ok merged ->
      check Alcotest.bool "more vertices than the plain parser" true
        (n_states merged > n_states p_plain);
      check Alcotest.bool "vlan@14 present" true
        (Parser_graph.find_state merged "vlan@14" <> None);
      check Alcotest.bool "vlan@34 (under sfc) present" true
        (Parser_graph.find_state merged "vlan@34" <> None);
      (match Parser_graph.validate merged with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)

let test_merge_goto_beats_accept () =
  (* nol4's ipv4 vertices accept; plain's continue to tcp/udp. The merge
     must keep the continuation. *)
  match Parser_merge.merge ~name:"m" [ p_nol4; p_plain ] with
  | Error c -> Alcotest.fail (Parser_merge.conflict_message c)
  | Ok merged -> (
      match Parser_graph.find_state merged "ipv4@14" with
      | None -> Alcotest.fail "ipv4@14 missing"
      | Some s ->
          check Alcotest.bool "ipv4 continues to transport" true
            (s.Parser_graph.select <> None))

let test_merged_parses_both_shapes () =
  let merged =
    Result.get_ok (Parser_merge.merge ~name:"m" [ p_plain; p_vlan ])
  in
  let mac = Netpkt.Mac.of_string_exn "02:00:00:00:00:01" in
  let tuple =
    {
      Netpkt.Flow.src = Netpkt.Ip4.of_string_exn "192.0.2.1";
      dst = Netpkt.Ip4.of_string_exn "10.0.0.1";
      proto = Netpkt.Ipv4.proto_udp;
      src_port = 53;
      dst_port = 53;
    }
  in
  let plain_pkt = Netpkt.Pkt.tcp_flow ~src_mac:mac ~dst_mac:mac tuple in
  let vlan_pkt =
    match plain_pkt with
    | Netpkt.Pkt.Eth e :: rest ->
        Netpkt.Pkt.Eth { e with Netpkt.Eth.ethertype = Netpkt.Eth.ethertype_vlan }
        :: Netpkt.Pkt.Vlan (Netpkt.Vlan.make ~vid:7 Netpkt.Eth.ethertype_ipv4)
        :: rest
    | _ -> assert false
  in
  List.iter
    (fun (label, pkt, expect_vlan) ->
      let phv = Phv.create [] in
      match Parser_graph.parse merged (Netpkt.Pkt.encode pkt) phv with
      | Error e -> Alcotest.fail (label ^ ": " ^ e)
      | Ok _ ->
          check Alcotest.bool (label ^ ": udp parsed") true (Phv.is_valid phv "udp");
          check Alcotest.bool (label ^ ": vlan validity") expect_vlan
            (Phv.is_valid phv "vlan"))
    [ ("plain", plain_pkt, false); ("vlan", vlan_pkt, true) ]

let test_global_id_table () =
  let table = Parser_merge.global_id_table [ p_plain; p_vlan ] in
  check Alcotest.(option string) "eth@0" (Some "eth@0")
    (List.assoc_opt ("eth", 0) table);
  check Alcotest.(option string) "ipv4 under sfc" (Some "ipv4@34")
    (List.assoc_opt ("ipv4", 34) table);
  (* The table must be small (the paper's argument for feasibility). *)
  check Alcotest.bool "table is small" true (List.length table < 32)

let test_decl_conflict_detected () =
  let bogus_eth = Hdr.decl "eth" [ ("everything", 64) ] in
  let bad =
    {
      Parser_graph.name = "bad";
      decls = [ bogus_eth ];
      start = Parser_graph.Goto "eth@0";
      states = [ { Parser_graph.id = "eth@0"; header = "eth"; offset = 0; select = None } ];
    }
  in
  match Parser_merge.merge ~name:"m" [ p_plain; bad ] with
  | Error (Parser_merge.Decl_mismatch "eth") -> ()
  | Error c -> Alcotest.fail (Parser_merge.conflict_message c)
  | Ok _ -> Alcotest.fail "decl conflict not detected"

let test_case_target_conflict_detected () =
  (* Same vertex, same select value, different successors. *)
  let mk target =
    {
      Parser_graph.name = "p";
      decls = [ Net_hdrs.eth; Net_hdrs.ipv4; Sfc_header.decl ];
      start = Parser_graph.Goto "e";
      states =
        [
          {
            Parser_graph.id = "e";
            header = "eth";
            offset = 0;
            select =
              Some
                {
                  Parser_graph.on = [ Net_hdrs.eth_ethertype ];
                  cases = [ { Parser_graph.values = [ 0x0800L ]; next = Parser_graph.Goto target } ];
                  default = Parser_graph.Accept;
                };
          };
          { Parser_graph.id = "i"; header = "ipv4"; offset = 14; select = None };
          { Parser_graph.id = "s"; header = "sfc"; offset = 14; select = None };
        ];
    }
  in
  match Parser_merge.merge ~name:"m" [ mk "i"; mk "s" ] with
  | Error (Parser_merge.Case_target _) -> ()
  | Error c -> Alcotest.fail (Parser_merge.conflict_message c)
  | Ok _ -> Alcotest.fail "case target conflict not detected"

let test_select_fields_conflict_detected () =
  let mk on =
    {
      Parser_graph.name = "p";
      decls = [ Net_hdrs.eth ];
      start = Parser_graph.Goto "e";
      states =
        [
          {
            Parser_graph.id = "e";
            header = "eth";
            offset = 0;
            select =
              Some
                { Parser_graph.on = [ on ]; cases = []; default = Parser_graph.Accept };
          };
        ];
    }
  in
  match
    Parser_merge.merge ~name:"m"
      [ mk Net_hdrs.eth_ethertype; mk Net_hdrs.eth_src ]
  with
  | Error (Parser_merge.Select_fields _) -> ()
  | Error c -> Alcotest.fail (Parser_merge.conflict_message c)
  | Ok _ -> Alcotest.fail "select-fields conflict not detected"

let test_merge_order_irrelevant_for_acceptance () =
  let a = Result.get_ok (Parser_merge.merge ~name:"a" [ p_plain; p_vlan; p_nol4 ]) in
  let b = Result.get_ok (Parser_merge.merge ~name:"b" [ p_nol4; p_vlan; p_plain ]) in
  check Alcotest.int "same vertex count" (n_states a) (n_states b);
  let sort p =
    List.sort compare
      (List.map (fun (s : Parser_graph.state) -> s.Parser_graph.id) p.Parser_graph.states)
  in
  check Alcotest.(list string) "same vertex ids" (sort a) (sort b)

let () =
  Alcotest.run "parser_merge"
    [
      ( "merge",
        [
          Alcotest.test_case "idempotent" `Quick test_merge_self_idempotent;
          Alcotest.test_case "adds vlan branches" `Quick test_merge_adds_vlan_branches;
          Alcotest.test_case "goto beats accept" `Quick test_merge_goto_beats_accept;
          Alcotest.test_case "parses both shapes" `Quick test_merged_parses_both_shapes;
          Alcotest.test_case "global id table" `Quick test_global_id_table;
          Alcotest.test_case "order irrelevant" `Quick
            test_merge_order_irrelevant_for_acceptance;
        ] );
      ( "conflicts",
        [
          Alcotest.test_case "decl mismatch" `Quick test_decl_conflict_detected;
          Alcotest.test_case "case target" `Quick test_case_target_conflict_detected;
          Alcotest.test_case "select fields" `Quick
            test_select_fields_conflict_detected;
        ] );
    ]
