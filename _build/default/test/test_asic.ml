(* ASIC model tests: spec geometry, ports, stage allocation, the
   chip walk (forwarding, resubmission, recirculation, drops), and the
   latency model's calibration. *)

open P4ir

let check = Alcotest.check

let spec = Asic.Spec.wedge_100b
let fr = Fieldref.v

(* --- Spec / ports --- *)

let test_spec_geometry () =
  check Alcotest.int "pipelets" 4 (Asic.Spec.n_pipelets spec);
  check Alcotest.int "eth ports" 32 (Asic.Spec.n_eth_ports spec);
  check Alcotest.int "port 0 on pipe 0" 0 (Asic.Spec.port_pipeline spec 0);
  check Alcotest.int "port 16 on pipe 1" 1 (Asic.Spec.port_pipeline spec 16);
  check Alcotest.int "recirc port id" 257 (Asic.Spec.recirc_port 1);
  check Alcotest.bool "recirc port valid" true (Asic.Spec.valid_port spec 257);
  check Alcotest.bool "cpu port valid" true
    (Asic.Spec.valid_port spec Asic.Spec.cpu_port);
  check Alcotest.bool "bogus port invalid" false (Asic.Spec.valid_port spec 100);
  check Alcotest.(float 1e-9) "capacity" 3200.0 (Asic.Spec.total_capacity_gbps spec)

let test_port_modes () =
  let ports = Asic.Port.make spec in
  check Alcotest.int "no loopbacks initially" 0 (Asic.Port.loopback_count ports);
  Asic.Port.set_pipeline_loopback ports spec 1;
  check Alcotest.int "16 loopbacks" 16 (Asic.Port.loopback_count ports);
  check Alcotest.bool "port 16 looped" true (Asic.Port.is_loopback ports 16);
  check Alcotest.bool "port 0 normal" false (Asic.Port.is_loopback ports 0);
  check Alcotest.(float 1e-9) "half external capacity" 0.5
    (Asic.Port.external_capacity_fraction ports)

(* --- a tiny test program --- *)

let meta = Hdr.decl "h" [ ("tag", 8) ]

let tiny_parser =
  (* Just ethernet; the 'h' decl rides along for scratch state. *)
  {
    Parser_graph.name = "tiny";
    decls = [ Dejavu_core.Net_hdrs.eth; meta ];
    start = Parser_graph.Goto "eth@0";
    states = [ { Parser_graph.id = "eth@0"; header = "eth"; offset = 0; select = None } ];
  }

(* Forward everything to a fixed port, optionally resubmitting once
   (keyed on a scratch tag so the second pass behaves differently). *)
let forwarder ~out_port ~resubmit_once =
  let set_out =
    Control.Run
      [
        Action.Assign
          (Asic.Stdmeta.egress_spec, Expr.const ~width:9 out_port);
      ]
  in
  let body =
    if resubmit_once then
      [
        Control.If
          ( Expr.(Field (fr "eth" "src") = const ~width:48 0),
            (* First pass: stamp src and resubmit. *)
            [
              Control.Run
                [
                  Action.Assign (fr "eth" "src", Expr.const ~width:48 1);
                  Action.Assign
                    (Asic.Stdmeta.resubmit_flag, Expr.const ~width:1 1);
                ];
            ],
            [ set_out ] );
      ]
    else [ set_out ]
  in
  Program.make ~name:"fwd" ~decls:tiny_parser.Parser_graph.decls
    ~parser:tiny_parser ~tables:[]
    ~control:(Control.make "fwd_c" body)
    ~deparse_order:[ "eth" ] ()

let passthrough name =
  Program.empty ~name ~decls:tiny_parser.Parser_graph.decls ~parser:tiny_parser

let load_chip ?(ports = Asic.Port.make spec) ingress0 =
  Result.get_ok
    (Asic.Chip.load
       {
         Asic.Chip.spec;
         ingress_programs = [| ingress0; passthrough "i1" |];
         egress_programs = [| passthrough "e0"; passthrough "e1" |];
         ports;
         mirror_port = None;
       })

let eth_frame ?(src = 0L) () =
  let b = Bytes.make 14 '\000' in
  Netpkt.Bytes_util.set_bits b ~bit_off:48 ~width:48 src;
  Netpkt.Bytes_util.set_uint16 b 12 0x9999;
  b

(* --- chip walk --- *)

let test_forwarding () =
  let chip = load_chip (forwarder ~out_port:17 ~resubmit_once:false) in
  match Asic.Chip.inject chip ~in_port:0 (eth_frame ()) with
  | Error e -> Alcotest.fail e
  | Ok r -> (
      match r.Asic.Chip.verdict with
      | Asic.Chip.Emitted { port; _ } ->
          check Alcotest.int "out port" 17 port;
          check Alcotest.int "no recircs" 0 r.Asic.Chip.recircs;
          (* ingress 0 then egress 1 (port 17 is on pipeline 1) *)
          check Alcotest.int "two pipelets visited" 2
            (List.length r.Asic.Chip.visits)
      | _ -> Alcotest.fail "expected emission")

let test_resubmission () =
  let chip = load_chip (forwarder ~out_port:1 ~resubmit_once:true) in
  match Asic.Chip.inject chip ~in_port:0 (eth_frame ()) with
  | Error e -> Alcotest.fail e
  | Ok r ->
      check Alcotest.int "one resubmission" 1 r.Asic.Chip.resubmits;
      (match r.Asic.Chip.verdict with
      | Asic.Chip.Emitted { frame; _ } ->
          (* The stamped src survived the resubmission via the deparser. *)
          check Alcotest.int64 "state carried in header" 1L
            (Netpkt.Bytes_util.get_bits frame ~bit_off:48 ~width:48)
      | _ -> Alcotest.fail "expected emission")

let test_recirculation_via_recirc_port () =
  (* Send to pipeline 1's dedicated recirc port: the packet must come
     back to ingress 1; with no further guidance it then has egress_spec
     0 -> emitted on port 0... to keep it simple, ingress 1 is a
     passthrough so the resulting egress_spec stays 0 (port 0). *)
  let chip = load_chip (forwarder ~out_port:257 ~resubmit_once:false) in
  match Asic.Chip.inject chip ~in_port:0 (eth_frame ()) with
  | Error e -> Alcotest.fail e
  | Ok r ->
      check Alcotest.int "one recirculation" 1 r.Asic.Chip.recircs;
      check Alcotest.bool "visited ingress 1 after recirc" true
        (List.exists
           (fun (id : Asic.Pipelet.id) ->
             id.Asic.Pipelet.pipeline = 1 && id.Asic.Pipelet.kind = Asic.Pipelet.Ingress)
           r.Asic.Chip.visits)

let test_loopback_port_recirculates () =
  let ports = Asic.Port.make spec in
  Asic.Port.set_mode ports 20 Asic.Port.Loopback;
  let chip = load_chip ~ports (forwarder ~out_port:20 ~resubmit_once:false) in
  match Asic.Chip.inject chip ~in_port:0 (eth_frame ()) with
  | Error e -> Alcotest.fail e
  | Ok r -> check Alcotest.int "loopback recirculates" 1 r.Asic.Chip.recircs

let test_drop () =
  let dropper =
    Program.make ~name:"drop" ~decls:tiny_parser.Parser_graph.decls
      ~parser:tiny_parser ~tables:[]
      ~control:
        (Control.make "c"
           [
             Control.Run
               [ Action.Assign (Asic.Stdmeta.drop_flag, Expr.const ~width:1 1) ];
           ])
      ~deparse_order:[ "eth" ] ()
  in
  let chip = load_chip dropper in
  match Asic.Chip.inject chip ~in_port:0 (eth_frame ()) with
  | Error e -> Alcotest.fail e
  | Ok r -> (
      match r.Asic.Chip.verdict with
      | Asic.Chip.Dropped -> ()
      | _ -> Alcotest.fail "expected drop")

let test_inject_on_loopback_port_rejected () =
  let ports = Asic.Port.make spec in
  Asic.Port.set_mode ports 0 Asic.Port.Loopback;
  let chip = load_chip ~ports (forwarder ~out_port:1 ~resubmit_once:false) in
  check Alcotest.bool "loopback port takes no external traffic" true
    (Result.is_error (Asic.Chip.inject chip ~in_port:0 (eth_frame ())))

let test_unset_egress_goes_port0 () =
  (* A program that never sets egress_spec: port 0 (the zero value). *)
  let chip = load_chip (passthrough "i0") in
  match Asic.Chip.inject chip ~in_port:3 (eth_frame ()) with
  | Error e -> Alcotest.fail e
  | Ok r -> (
      match r.Asic.Chip.verdict with
      | Asic.Chip.Emitted { port; _ } -> check Alcotest.int "port 0" 0 port
      | _ -> Alcotest.fail "expected emission")

let test_routing_loop_detected () =
  (* Forward forever to the recirc port of pipeline 0. *)
  let looper =
    Program.make ~name:"loop" ~decls:tiny_parser.Parser_graph.decls
      ~parser:tiny_parser ~tables:[]
      ~control:
        (Control.make "c"
           [
             Control.Run
               [
                 Action.Assign (Asic.Stdmeta.egress_spec, Expr.const ~width:9 256);
               ];
           ])
      ~deparse_order:[ "eth" ] ()
  in
  let chip = load_chip looper in
  check Alcotest.bool "pass limit enforced" true
    (Result.is_error (Asic.Chip.inject chip ~in_port:0 (eth_frame ())))

(* --- stage allocation --- *)

let wide_table n =
  Table.make ~name:(Printf.sprintf "w%d" n)
    ~keys:[ { Table.field = fr "eth" "dst"; kind = Table.Exact; width = 48 } ]
    ~actions:[ Action.no_op ] ~default:("NoAction", []) ~max_size:1024 ()

let test_stage_allocation_packs_independent () =
  (* Independent tables pack into stage 0 until table ids run out. *)
  let tables = List.init 20 wide_table in
  let control = Control.make "c" (List.map (fun t -> Control.Apply (Table.name t)) tables) in
  let program =
    Program.make ~name:"p" ~decls:tiny_parser.Parser_graph.decls
      ~parser:tiny_parser ~tables ~control ~deparse_order:[ "eth" ] ()
  in
  match Asic.Pipelet.allocate_stages spec program with
  | Error e -> Alcotest.fail e
  | Ok alloc ->
      check Alcotest.int "all tables placed" 20 (List.length alloc);
      (* 48 hash bits per table against 416 per stage: 8 tables/stage. *)
      let per_stage s = List.length (List.filter (fun (_, x) -> x = s) alloc) in
      check Alcotest.int "stage 0 filled to the hash-bit cap" 8 (per_stage 0);
      check Alcotest.int "stage 1 filled" 8 (per_stage 1);
      check Alcotest.int "remainder in stage 2" 4 (per_stage 2)

let test_stage_allocation_overflow () =
  (* A dependency chain longer than the pipelet's stages cannot load. *)
  let mk_chain n =
    List.init n (fun i ->
        let tag_field = fr "h" "tag" in
        Table.make ~name:(Printf.sprintf "c%d" i)
          ~keys:[ { Table.field = tag_field; kind = Table.Exact; width = 8 } ]
          ~actions:
            [
              Action.make "w"
                [
                  Action.Assign
                    (tag_field, Expr.(Field tag_field + const ~width:8 1));
                ];
            ]
          ~default:("w", []) ())
  in
  let tables = mk_chain (spec.Asic.Spec.stages_per_pipelet + 1) in
  let control = Control.make "c" (List.map (fun t -> Control.Apply (Table.name t)) tables) in
  let program =
    Program.make ~name:"p" ~decls:tiny_parser.Parser_graph.decls
      ~parser:tiny_parser ~tables ~control ~deparse_order:[ "eth" ] ()
  in
  check Alcotest.bool "too-long chain rejected" true
    (Result.is_error (Asic.Pipelet.allocate_stages spec program))

(* --- latency --- *)

let test_latency_calibration () =
  let p2p = Asic.Latency.port_to_port_ns spec in
  check Alcotest.bool "port-to-port ~650ns" true (abs_float (p2p -. 650.0) < 30.0);
  let on_chip = Asic.Latency.recirc_on_chip_ns spec in
  check Alcotest.bool "on-chip recirc ~75ns" true (abs_float (on_chip -. 75.0) < 5.0);
  let off_chip = Asic.Latency.recirc_off_chip_ns spec ~cable_m:1.0 in
  check Alcotest.bool "off-chip recirc ~145ns" true
    (abs_float (off_chip -. 145.0) < 10.0);
  check Alcotest.bool "off-chip ~2x on-chip (paper's takeaway 3)" true
    (off_chip /. on_chip > 1.7 && off_chip /. on_chip < 2.3);
  check Alcotest.bool "recirc small vs port-to-port (takeaway 3)" true
    (on_chip /. p2p < 0.15)

let test_latency_accumulates_in_walk () =
  let chip = load_chip (forwarder ~out_port:1 ~resubmit_once:false) in
  let direct =
    match Asic.Chip.inject chip ~in_port:0 (eth_frame ()) with
    | Ok r -> r.Asic.Chip.latency_ns
    | Error e -> Alcotest.fail e
  in
  let chip2 = load_chip (forwarder ~out_port:257 ~resubmit_once:false) in
  let with_recirc =
    match Asic.Chip.inject chip2 ~in_port:0 (eth_frame ()) with
    | Ok r -> r.Asic.Chip.latency_ns
    | Error e -> Alcotest.fail e
  in
  check Alcotest.bool "recirculated path is slower" true (with_recirc > direct);
  check Alcotest.(float 1e-6) "port-to-port matches model"
    (Asic.Latency.port_to_port_ns spec) direct

let () =
  Alcotest.run "asic"
    [
      ( "spec",
        [
          Alcotest.test_case "geometry" `Quick test_spec_geometry;
          Alcotest.test_case "port modes" `Quick test_port_modes;
        ] );
      ( "chip",
        [
          Alcotest.test_case "forwarding" `Quick test_forwarding;
          Alcotest.test_case "resubmission" `Quick test_resubmission;
          Alcotest.test_case "recirc port" `Quick test_recirculation_via_recirc_port;
          Alcotest.test_case "loopback port" `Quick test_loopback_port_recirculates;
          Alcotest.test_case "drop" `Quick test_drop;
          Alcotest.test_case "loopback inject rejected" `Quick
            test_inject_on_loopback_port_rejected;
          Alcotest.test_case "unset egress" `Quick test_unset_egress_goes_port0;
          Alcotest.test_case "routing loop" `Quick test_routing_loop_detected;
        ] );
      ( "stages",
        [
          Alcotest.test_case "independent pack" `Quick
            test_stage_allocation_packs_independent;
          Alcotest.test_case "overflow" `Quick test_stage_allocation_overflow;
        ] );
      ( "latency",
        [
          Alcotest.test_case "calibration" `Quick test_latency_calibration;
          Alcotest.test_case "accumulates" `Quick test_latency_accumulates_in_walk;
        ] );
    ]
