(* Multi-switch clusters (§7): traversal with inter-switch hops,
   placement of chains too big for one switch, and the latency model's
   hop accounting. *)

open Dejavu_core

let check = Alcotest.check

let spec = Asic.Spec.wedge_100b
let cluster n = Cluster.make ~spec ~n_switches:n ()

let ing c ~switch ~pipeline =
  Cluster.pipelet c ~switch ~pipeline ~kind:Asic.Pipelet.Ingress

let eg c ~switch ~pipeline =
  Cluster.pipelet c ~switch ~pipeline ~kind:Asic.Pipelet.Egress


let test_addressing () =
  let c = cluster 3 in
  check Alcotest.int "global pipelines" 6 (Cluster.n_global_pipelines c);
  check Alcotest.int "switch of pipeline 3" 1 (Cluster.switch_of_pipeline c 3);
  check Alcotest.int "global id" 5
    (Cluster.global_pipeline c ~switch:2 ~pipeline:1);
  Alcotest.check_raises "bad switch rejected"
    (Invalid_argument "Cluster.global_pipeline: bad switch") (fun () ->
      ignore (Cluster.global_pipeline c ~switch:3 ~pipeline:0))

let test_single_switch_matches_traversal () =
  (* On a 1-switch cluster, costs must match the single-switch solver. *)
  let c = cluster 1 in
  let chain = [ "A"; "B"; "C" ] in
  let layout =
    [
      (ing c ~switch:0 ~pipeline:0, [ Layout.Seq [ "A" ] ]);
      (eg c ~switch:0 ~pipeline:1, [ Layout.Seq [ "B" ] ]);
      (ing c ~switch:0 ~pipeline:1, [ Layout.Seq [ "C" ] ]);
    ]
  in
  let cluster_path =
    Option.get
      (Cluster.solve c layout ~entry_pipeline:0 ~exit_switch:0 ~exit_pipeline:0
         chain)
  in
  let single_path =
    Option.get (Traversal.solve spec layout ~entry_pipeline:0 ~exit_port:1 chain)
  in
  check Alcotest.int "same recircs" single_path.Traversal.recircs
    cluster_path.Cluster.recircs;
  check Alcotest.int "no hops on one switch" 0 cluster_path.Cluster.hops

let test_hop_replaces_recirculation () =
  (* A-B split so that on one switch it needs a recirc; on two switches
     the downstream NF can sit on the next switch and ride the cable. *)
  let chain = [ "A"; "B" ] in
  (* One switch: A on egress 0, B on ingress 0 -> recirc. *)
  let c1 = cluster 1 in
  let layout1 =
    [
      (eg c1 ~switch:0 ~pipeline:0, [ Layout.Seq [ "A" ] ]);
      (ing c1 ~switch:0 ~pipeline:0, [ Layout.Seq [ "B" ] ]);
    ]
  in
  let p1 =
    Option.get
      (Cluster.solve c1 layout1 ~entry_pipeline:0 ~exit_switch:0
         ~exit_pipeline:0 chain)
  in
  check Alcotest.int "one switch needs a recirc" 1 p1.Cluster.recircs;
  (* Two switches: A on switch 0's egress, B on switch 1. *)
  let c2 = cluster 2 in
  let layout2 =
    [
      (eg c2 ~switch:0 ~pipeline:0, [ Layout.Seq [ "A" ] ]);
      (ing c2 ~switch:1 ~pipeline:0, [ Layout.Seq [ "B" ] ]);
    ]
  in
  let p2 =
    Option.get
      (Cluster.solve c2 layout2 ~entry_pipeline:0 ~exit_switch:1
         ~exit_pipeline:0 chain)
  in
  check Alcotest.int "two switches: no recirc" 0 p2.Cluster.recircs;
  check Alcotest.int "one cable hop instead" 1 p2.Cluster.hops

let test_no_backward_hops () =
  (* An NF on switch 0 cannot be reached from switch 1 (unidirectional
     chain): placing the chain's tail upstream is unroutable. *)
  let c = cluster 2 in
  let layout =
    [
      (ing c ~switch:1 ~pipeline:0, [ Layout.Seq [ "A" ] ]);
      (ing c ~switch:0 ~pipeline:0, [ Layout.Seq [ "B" ] ]);
    ]
  in
  check Alcotest.bool "backward chain unroutable" true
    (Cluster.solve c layout ~entry_pipeline:0 ~exit_switch:0 ~exit_pipeline:0
       [ "A"; "B" ]
    = None)

let test_latency_accounts_for_hops () =
  let c = cluster 2 in
  let layout =
    [
      (eg c ~switch:0 ~pipeline:0, [ Layout.Seq [ "A" ] ]);
      (ing c ~switch:1 ~pipeline:0, [ Layout.Seq [ "B" ] ]);
    ]
  in
  let p =
    Option.get
      (Cluster.solve c layout ~entry_pipeline:0 ~exit_switch:1 ~exit_pipeline:0
         [ "A"; "B" ])
  in
  let lat = Cluster.latency_ns c p in
  (* Two full switch transits plus the cable. *)
  check Alcotest.bool "more than one port-to-port" true
    (lat > Asic.Latency.port_to_port_ns spec);
  check Alcotest.bool "includes the off-chip hop" true
    (lat
    >= (2.0 *. Asic.Latency.port_to_port_ns spec)
       +. Asic.Latency.recirc_off_chip_ns spec ~cable_m:1.0
       -. (2.0 *. spec.Asic.Spec.lat.Asic.Spec.mac_serdes_ns)
       -. 1.0)

(* A chain too big for one switch: 16 NFs of 2 stages each can never fit
   4 pipelets (2+2*2+... per pipelet caps at ~3 NFs), but a 3-switch
   cluster takes it with hops instead of recirculation storms. *)
let big_chain = List.init 16 (fun i -> Printf.sprintf "N%02d" i)

let big_chains =
  [ Chain.make ~path_id:1 ~name:"big" ~nfs:big_chain ~exit_port:1 () ]

let two_stage _ = { P4ir.Resources.zero with P4ir.Resources.stages = 2 }

let test_greedy_fill_places_big_chain () =
  let c = cluster 3 in
  match
    Cluster.place c ~resources_of:two_stage ~chains:big_chains ~exit_switch:2
      ~exit_pipeline:0 ~pinned:[] Cluster.Greedy_fill
  with
  | Error e -> Alcotest.fail e
  | Ok (layout, cost) ->
      check Alcotest.int "all NFs placed" 16 (List.length (Layout.all_nfs layout));
      (* Forward filling should need hops but few recirculations. *)
      let path =
        Option.get
          (Cluster.solve c layout ~entry_pipeline:0 ~exit_switch:2
             ~exit_pipeline:0 big_chain)
      in
      check Alcotest.int "uses both cables" 2 path.Cluster.hops;
      (* Forward fill still ping-pongs ingress/egress inside each switch
         (~2 recirculations per switch); the cables themselves are cheap. *)
      check Alcotest.bool
        (Printf.sprintf "cost %.2f bounded by intra-switch ping-pong" cost)
        true
        (cost < 5.0)

let test_anneal_not_worse_than_greedy () =
  let c = cluster 3 in
  let greedy =
    Cluster.place c ~resources_of:two_stage ~chains:big_chains ~exit_switch:2
      ~exit_pipeline:0 ~pinned:[] Cluster.Greedy_fill
  in
  let anneal =
    Cluster.place c ~resources_of:two_stage ~chains:big_chains ~exit_switch:2
      ~exit_pipeline:0 ~pinned:[]
      (Cluster.Anneal { iterations = 800; seed = 3 })
  in
  match (greedy, anneal) with
  | Ok (_, g), Ok (_, a) ->
      check Alcotest.bool
        (Printf.sprintf "anneal (%.2f) <= greedy (%.2f) + eps" a g)
        true (a <= g +. 1e-9)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_infeasible_on_single_switch () =
  (* The same 16-NF chain cannot fit one switch at all. *)
  let c = cluster 1 in
  check Alcotest.bool "single switch refuses" true
    (Result.is_error
       (Cluster.place c ~resources_of:two_stage ~chains:big_chains
          ~exit_switch:0 ~exit_pipeline:0 ~pinned:[] Cluster.Greedy_fill))

let () =
  Alcotest.run "cluster"
    [
      ( "topology",
        [
          Alcotest.test_case "addressing" `Quick test_addressing;
          Alcotest.test_case "1-switch = single" `Quick
            test_single_switch_matches_traversal;
          Alcotest.test_case "hop replaces recirc" `Quick
            test_hop_replaces_recirculation;
          Alcotest.test_case "no backward hops" `Quick test_no_backward_hops;
          Alcotest.test_case "hop latency" `Quick test_latency_accounts_for_hops;
        ] );
      ( "placement",
        [
          Alcotest.test_case "greedy fill" `Quick test_greedy_fill_places_big_chain;
          Alcotest.test_case "anneal >= greedy" `Quick
            test_anneal_not_worse_than_greedy;
          Alcotest.test_case "single switch infeasible" `Quick
            test_infeasible_on_single_switch;
        ] );
    ]
