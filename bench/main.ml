(* Reproduction harness: one section per table/figure of the paper's
   evaluation, plus the ablations from DESIGN.md and bechamel
   microbenchmarks of the library itself.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig8a   # one experiment

   Absolute numbers come from the calibrated chip model (DESIGN.md §2);
   the shapes are the claims under reproduction. *)

open Dejavu_core

let section title =
  Format.printf "@.==================================================@.";
  Format.printf "%s@." title;
  Format.printf "==================================================@."

let ip = Netpkt.Ip4.of_string_exn
let mac = Netpkt.Mac.of_string_exn
let spec = Asic.Spec.wedge_100b

(* ------------------------------------------------------------------ *)
(* E1 / Fig. 6: placement example, naive vs optimized                  *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  section "Fig. 6 - NF placement for the chain A-B-C-D-E-F (2 pipelines)";
  let ing p = { Asic.Pipelet.pipeline = p; kind = Asic.Pipelet.Ingress } in
  let eg p = { Asic.Pipelet.pipeline = p; kind = Asic.Pipelet.Egress } in
  let chain = [ "A"; "B"; "C"; "D"; "E"; "F" ] in
  let run name paper layout =
    match Traversal.solve spec layout ~entry_pipeline:0 ~exit_port:1 chain with
    | None -> Format.printf "%-12s unroutable@." name
    | Some p ->
        Format.printf "%-12s recirculations=%d  (paper: %s)@." name
          p.Traversal.recircs paper;
        Format.printf "             %a@." Traversal.pp_path p
  in
  run "fig6(a)" "3"
    [
      (ing 0, [ Layout.Seq [ "A"; "B" ] ]);
      (eg 0, [ Layout.Seq [ "C" ] ]);
      (ing 1, [ Layout.Seq [ "D" ] ]);
      (eg 1, [ Layout.Seq [ "E"; "F" ] ]);
    ];
  run "fig6(b)" "1"
    [
      (ing 0, [ Layout.Seq [ "A"; "B" ] ]);
      (eg 1, [ Layout.Seq [ "C" ] ]);
      (ing 1, [ Layout.Seq [ "D" ] ]);
      (eg 0, [ Layout.Seq [ "E"; "F" ] ]);
    ];
  (* And what our optimizer finds for the same workload. *)
  let input =
    {
      Placement.spec;
      resources_of = (fun _ -> { P4ir.Resources.zero with P4ir.Resources.stages = 1 });
      chains = [ Chain.make ~path_id:1 ~name:"af" ~nfs:chain ~exit_port:1 () ];
      entry_pipeline = 0;
      pinned = [];
      framework_stages_per_nf = 2;
      framework_stages_fixed = 1;
    }
  in
  match Placement.solve input Placement.Exhaustive with
  | Error e -> Format.printf "optimizer failed: %s@." e
  | Ok (layout, cost) ->
      Format.printf "optimizer    cost=%.2f with layout:@.%a@." cost Layout.pp layout

(* ------------------------------------------------------------------ *)
(* E2 / Fig. 7: the feedback-queue model                                *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  section "Fig. 7 / Sec. 4 - loopback feedback-queue model";
  let rates = Model.feedback_arrival_rates 2 in
  let total = Array.fold_left ( +. ) 0.0 rates in
  let x = rates.(0) /. total in
  Format.printf "x (first-pass share at saturated EB) = %.3fT   (paper: 0.62T)@." x;
  Format.printf "golden conjugate                      = %.3f@." Model.golden_x;
  Format.printf "2-recirc delivered                    = %.3fT  (paper: 0.38T)@."
    (Model.feedback_throughput 2);
  Format.printf "3-recirc delivered                    = %.3fT  (paper: 0.16T)@."
    (Model.feedback_throughput 3);
  Format.printf "@.Linear capacity split (m of n ports loopback):@.";
  Format.printf "%6s %10s %18s@." "m/n" "external" "1-recirc share";
  List.iter
    (fun m ->
      let s = Model.loopback_split ~n_ports:32 ~m_loopback:m in
      Format.printf "%3d/32 %9.2f%% %17.2f%%@." m
        (100.0 *. s.Model.external_fraction)
        (100.0 *. s.Model.single_recirc_fraction))
    [ 0; 4; 8; 16; 24 ]

(* ------------------------------------------------------------------ *)
(* E3 / Fig. 8a: throughput vs number of recirculations                *)
(* ------------------------------------------------------------------ *)

let fig8a () =
  section "Fig. 8(a) - effective throughput vs recirculations (100 Gbps in)";
  Format.printf "%8s %12s %12s %10s@." "recircs" "sim (Gbps)" "model (Gbps)"
    "paper";
  let paper = [ (1, "~100"); (2, "~38"); (3, "~16"); (4, "~7"); (5, "~3") ] in
  List.iter
    (fun (k, stats) ->
      let sim = 100.0 *. stats.Asic.Flowsim.throughput_fraction in
      let model = 100.0 *. Model.feedback_throughput k in
      Format.printf "%8d %12.1f %12.1f %10s@." k sim model
        (Option.value ~default:"-" (List.assoc_opt k paper)))
    (Asic.Flowsim.sweep [ 0; 1; 2; 3; 4; 5 ]);
  Format.printf
    "(shape check: super-linear decay; 1 recirc keeps line rate, 3 lose >2/3)@."

(* ------------------------------------------------------------------ *)
(* E4 / Fig. 8b: recirculation latency                                  *)
(* ------------------------------------------------------------------ *)

let fig8b () =
  section "Fig. 8(b) - recirculation latency";
  let p2p = Asic.Latency.port_to_port_ns spec in
  let on_chip = Asic.Latency.recirc_on_chip_ns spec in
  let off_chip = Asic.Latency.recirc_off_chip_ns spec ~cable_m:1.0 in
  Format.printf "port-to-port (idle buffers): %6.0f ns   (paper: ~650 ns)@." p2p;
  Format.printf "on-chip recirculation:       %6.0f ns   (paper: ~75 ns)@." on_chip;
  Format.printf "off-chip recirc (1 m DAC):   %6.0f ns   (paper: ~145 ns)@."
    off_chip;
  Format.printf "on-chip / port-to-port:      %6.1f%%   (paper: ~11.5%%)@."
    (100.0 *. on_chip /. p2p);
  Format.printf "off-chip / on-chip:          %6.2fx   (paper: ~2x)@."
    (off_chip /. on_chip);
  (* Measured on the chip walk itself. *)
  Format.printf "@.measured on the chip model:@.";
  let input = Nflib.Catalog.edge_cloud_input () in
  match Compiler.compile input with
  | Error e -> Format.printf "compile failed: %s@." e
  | Ok compiled ->
      let frame =
        Netpkt.Pkt.encode
          (Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:00:00:00:00:01")
             ~dst_mac:(mac "02:00:00:00:00:02")
             {
               Netpkt.Flow.src = ip "203.0.113.7";
               dst = ip "10.0.3.50";
               proto = Netpkt.Ipv4.proto_tcp;
               src_port = 1234;
               dst_port = 443;
             })
      in
      (match Asic.Chip.inject compiled.Compiler.chip ~in_port:0 frame with
      | Ok r ->
          Format.printf "  green path (0 recirculations): %.0f ns@."
            r.Asic.Chip.latency_ns
      | Error e -> Format.printf "  error: %s@." e)

(* ------------------------------------------------------------------ *)
(* E5+E6 / Fig. 9 + Table 1: the 5-NF prototype and its overhead        *)
(* ------------------------------------------------------------------ *)

let compile_prototype ?(strategy = Placement.Exhaustive) () =
  Compiler.compile (Nflib.Catalog.edge_cloud_input ~strategy ())

let fig9 () =
  section "Fig. 9 - prototype placement (5 NFs, 2 pipelines, pipe 1 loopback)";
  match compile_prototype () with
  | Error e -> Format.printf "compile failed: %s@." e
  | Ok compiled ->
      Format.printf "%a@." Compiler.pp_summary compiled;
      let ports = Asic.Chip.ports compiled.Compiler.chip in
      Format.printf
        "capacity: %.0f Gbps external, every packet may recirculate once \
         (paper: 1.6 Tbps)@."
        (Asic.Port.external_capacity_fraction ports
        *. Asic.Spec.total_capacity_gbps spec);
      Format.printf "generic parser: %d vertices over %d header declarations@."
        (List.length compiled.Compiler.generic_parser.P4ir.Parser_graph.states)
        (List.length compiled.Compiler.generic_parser.P4ir.Parser_graph.decls)

let table1 () =
  section "Table 1 - Dejavu framework resource overhead on the chip";
  match compile_prototype () with
  | Error e -> Format.printf "compile failed: %s@." e
  | Ok compiled ->
      let rows = Compiler.framework_report compiled in
      let paper =
        [
          ("Stages", "20.8%"); ("Table IDs", "4.2%"); ("Gateways", "2%");
          ("Crossbars", "0.4%"); ("VLIWs", "1.5%"); ("SRAM", "0.2%");
          ("TCAM", "0%");
        ]
      in
      Format.printf "%-10s %8s %9s %8s %8s@." "Resource" "Used" "Capacity"
        "Ours" "Paper";
      List.iter
        (fun (r : Compiler.report_row) ->
          Format.printf "%-10s %8d %9d %7.1f%% %8s@." r.Compiler.resource
            r.Compiler.used r.Compiler.capacity r.Compiler.pct
            (Option.value ~default:"-" (List.assoc_opt r.Compiler.resource paper)))
        rows

(* ------------------------------------------------------------------ *)
(* E7: functional validation (PTF), as in Sec. 5                        *)
(* ------------------------------------------------------------------ *)

let validation () =
  section "Sec. 5 validation - PTF send/expect over every SFC path";
  match compile_prototype () with
  | Error e -> Format.printf "compile failed: %s@." e
  | Ok compiled ->
      let rt = Runtime.create compiled in
      Nflib.Catalog.attach_handlers rt compiled;
      let flow dst dst_port =
        Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:00:00:00:00:01")
          ~dst_mac:(mac "02:00:00:00:00:02")
          {
            Netpkt.Flow.src = ip "203.0.113.77";
            dst;
            proto = Netpkt.Ipv4.proto_tcp;
            src_port = 50000;
            dst_port;
          }
      in
      let blocked =
        Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:00:00:00:00:01")
          ~dst_mac:(mac "02:00:00:00:00:02")
          {
            Netpkt.Flow.src = ip "198.51.100.1";
            dst = Nflib.Catalog.tenant1_vip;
            proto = Netpkt.Ipv4.proto_tcp;
            src_port = 50000;
            dst_port = 80;
          }
      in
      let cases =
        [
          ( "red (classifier-fw-vgw-lb-router)",
            flow Nflib.Catalog.tenant1_vip 80,
            Ptf.Emitted_on 1 );
          ("orange (classifier-vgw-router)", flow (ip "10.0.2.9") 80, Ptf.Emitted_on 1);
          ("green (classifier-router)", flow (ip "10.0.3.9") 80, Ptf.Emitted_on 1);
          ("blocked source", blocked, Ptf.Dropped);
          ("unclassified", flow (ip "192.0.2.1") 80, Ptf.To_cpu);
        ]
      in
      List.iter
        (fun (name, pkt, expect) ->
          match Ptf.send_expect rt ~in_port:0 pkt ~expect () with
          | Ok o ->
              let c = o.Ptf.runtime.Runtime.counters in
              Format.printf "  [pass] %-36s (recircs=%d, cpu=%d, %.0f ns)@." name
                c.Runtime.Counters.recircs c.Runtime.Counters.cpu_round_trips
                c.Runtime.Counters.latency_ns
          | Error e -> Format.printf "  [FAIL] %-36s %s@." name e)
        cases

(* ------------------------------------------------------------------ *)
(* E8: the Sec. 1 motivation numbers                                    *)
(* ------------------------------------------------------------------ *)

let motivation () =
  section "Sec. 1 motivation - software cores vs one switch ASIC";
  let target = 1600.0 in
  Format.printf
    "chain capacity target: %.0f Gbps (the prototype's external rate)@." target;
  Format.printf "%28s %8s@." "software NF performance" "cores";
  List.iter
    (fun (label, per_core) ->
      Format.printf "%28s %8d@." label
        (Model.software_cores_needed ~target_gbps:target ~gbps_per_core:per_core))
    [
      ("5 Gbps/core (heavy NF)", 5.0);
      ("10 Gbps/core", 10.0);
      ("20 Gbps/core", 20.0);
    ];
  Format.printf "switch ASICs needed: 1  (paper: one or two orders of magnitude)@."

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let ablation_compose () =
  section "Ablation A1 - sequential vs parallel composition";
  let registry = Nflib.Catalog.registry () in
  let nf_of name = Nf.instantiate registry name in
  let generic_parser =
    match compile_prototype () with
    | Ok c -> c.Compiler.generic_parser
    | Error e -> failwith e
  in
  let id = { Asic.Pipelet.pipeline = 0; kind = Asic.Pipelet.Ingress } in
  List.iter
    (fun (name, layout) ->
      match Compose.build ~spec ~generic_parser ~id ~layout ~nf_of with
      | Error e -> Format.printf "%-24s error: %s@." name e
      | Ok b -> (
          match Asic.Pipelet.load spec id b.Compose.program with
          | Error e -> Format.printf "%-24s does not load: %s@." name e
          | Ok pl ->
              Format.printf "%-24s stages=%2d tables=%2d gateways=%d@." name
                (Asic.Pipelet.stages_used pl)
                (List.length b.Compose.program.P4ir.Program.tables)
                b.Compose.framework_gateways))
    [
      ("seq(fw, lb, router)", [ Layout.Seq [ "fw"; "lb"; "router" ] ]);
      ("par(fw | lb | router)", [ Layout.Par [ "fw"; "lb"; "router" ] ]);
    ];
  Format.printf
    "(seq costs stages but transitions are free; par shares stages but \
     branch changes need a resubmission/recirculation)@."

let ablation_placement () =
  section "Ablation A2 - placement strategies on the Fig. 2 policy";
  Format.printf "%-12s %10s %12s@." "strategy" "objective" "compile";
  List.iter
    (fun (name, strategy) ->
      let t0 = Unix.gettimeofday () in
      match compile_prototype ~strategy () with
      | Error e -> Format.printf "%-12s failed: %s@." name e
      | Ok compiled ->
          let dt = (Unix.gettimeofday () -. t0) *. 1000.0 in
          Format.printf "%-12s %10.3f %10.1fms@." name compiled.Compiler.objective
            dt)
    [
      ("naive", Placement.Naive);
      ("greedy", Placement.Greedy);
      ("anneal", Placement.default_anneal);
      ("exhaustive", Placement.Exhaustive);
    ]

let ablation_loopback () =
  section "Ablation A3 - loopback provisioning vs chain throughput";
  Format.printf "%12s %12s %14s %14s@." "loopback m" "external" "1-recirc Gbps"
    "2-recirc Gbps";
  List.iter
    (fun m ->
      let ports = Asic.Port.make spec in
      for i = 0 to m - 1 do
        Asic.Port.set_mode ports i Asic.Port.Loopback
      done;
      Format.printf "%9d/32 %11.0fG %14.1f %14.1f@." m
        (Asic.Port.external_capacity_fraction ports
        *. Asic.Spec.total_capacity_gbps spec)
        (Model.chain_throughput_gbps spec ports ~recircs:1)
        (Model.chain_throughput_gbps spec ports ~recircs:2))
    [ 4; 8; 12; 16; 20 ]

(* ------------------------------------------------------------------ *)
(* Sec. 7 extension: clusters of switch data planes                     *)
(* ------------------------------------------------------------------ *)

let ablation_cluster () =
  section "Sec. 7 extension - clusters of switch data planes";
  let chain = List.init 16 (fun i -> Printf.sprintf "N%02d" i) in
  let chains = [ Chain.make ~path_id:1 ~name:"big" ~nfs:chain ~exit_port:1 () ] in
  let resources_of _ = { P4ir.Resources.zero with P4ir.Resources.stages = 2 } in
  Format.printf "a 16-NF chain (2 MAU stages per NF) across cluster sizes:@.@.";
  Format.printf "%10s %10s %8s %8s %12s@." "switches" "placed?" "recircs"
    "hops" "latency";
  List.iter
    (fun n ->
      let c = Cluster.make ~spec ~n_switches:n () in
      match
        Cluster.place c ~resources_of ~chains ~exit_switch:(n - 1)
          ~exit_pipeline:0 ~pinned:[]
          (Cluster.Anneal { iterations = 1500; seed = 7 })
      with
      | Error _ -> Format.printf "%10d %10s %8s %8s %12s@." n "no" "-" "-" "-"
      | Ok (layout, _) -> (
          match
            Cluster.solve c layout ~entry_pipeline:0 ~exit_switch:(n - 1)
              ~exit_pipeline:0 chain
          with
          | None -> Format.printf "%10d %10s (unroutable)@." n "yes"
          | Some p ->
              Format.printf "%10d %10s %8d %8d %9.0f ns@." n "yes"
                p.Cluster.recircs p.Cluster.hops (Cluster.latency_ns c p)))
    [ 1; 2; 3; 4 ];
  Format.printf
    "@.(the paper's Sec. 7: chaining switches back-to-back multiplies MAU \
     stages; the off-chip hop is ~2x an on-chip recirculation in latency \
     but costs no recirculation bandwidth)@."

(* ------------------------------------------------------------------ *)
(* Sec. 6 related work: native merge vs Hyper4-style emulation          *)
(* ------------------------------------------------------------------ *)

let related_work () =
  section "Sec. 6 - code-level merge vs data-plane emulation (Hyper4/HyperV)";
  let registry = Nflib.Catalog.registry () in
  let nfs =
    List.filter_map
      (fun n -> Result.to_option (Nf.instantiate registry n))
      [ "classifier"; "fw"; "vgw"; "lb"; "router" ]
  in
  Format.printf "%-12s %18s %18s %10s@." "NF" "native (stages/TCAM)"
    "emulated" "factor";
  List.iter
    (fun nf ->
      let c = Baseline.compare_nf nf in
      let stage_factor =
        match List.assoc_opt "stages" (Baseline.overhead_factor c) with
        | Some f -> Printf.sprintf "%.1fx" f
        | None -> "-"
      in
      Format.printf "%-12s %11d / %-6d %11d / %-6d %8s@." c.Baseline.nf
        c.Baseline.native.P4ir.Resources.stages
        c.Baseline.native.P4ir.Resources.tcams
        c.Baseline.emulated.P4ir.Resources.stages
        c.Baseline.emulated.P4ir.Resources.tcams stage_factor)
    nfs;
  let total = Baseline.summary nfs in
  Format.printf "@.%a@." Baseline.pp_comparison total;
  Format.printf
    "@.(paper Sec. 6: emulation approaches need ~3-7x the resources of \
     native programs; Dejavu merges at the code level and avoids this)@."

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the library itself                       *)
(* ------------------------------------------------------------------ *)

let microbench () =
  section "Microbenchmarks (bechamel, monotonic clock)";
  let compiled = Result.get_ok (compile_prototype ()) in
  let frame =
    Netpkt.Pkt.encode
      (Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:00:00:00:00:01")
         ~dst_mac:(mac "02:00:00:00:00:02")
         {
           Netpkt.Flow.src = ip "203.0.113.7";
           dst = ip "10.0.3.50";
           proto = Netpkt.Ipv4.proto_tcp;
           src_port = 1234;
           dst_port = 443;
         })
  in
  let parser = compiled.Compiler.generic_parser in
  let registry = Nflib.Catalog.registry () in
  let tests =
    [
      Bechamel.Test.make ~name:"chip walk (green path)"
        (Bechamel.Staged.stage (fun () ->
             ignore (Asic.Chip.inject compiled.Compiler.chip ~in_port:0 frame)));
      Bechamel.Test.make ~name:"generic parser parse"
        (Bechamel.Staged.stage (fun () ->
             let phv = P4ir.Phv.create [] in
             ignore (P4ir.Parser_graph.parse parser frame phv)));
      Bechamel.Test.make ~name:"parser merge (6 parsers)"
        (Bechamel.Staged.stage (fun () ->
             let nfs =
               List.filter_map
                 (fun (n, _) ->
                   Result.to_option
                     (Result.map
                        (fun nf -> nf.Nf.parser)
                        (Nf.instantiate registry n)))
                 (List.filteri (fun i _ -> i < 5) registry)
             in
             ignore
               (Parser_merge.merge ~name:"bench"
                  (Net_hdrs.base_parser ~with_vlan:true ~name:"fw" () :: nfs))));
      Bechamel.Test.make ~name:"end-to-end compile (Fig. 2 policy)"
        (Bechamel.Staged.stage (fun () -> ignore (compile_prototype ())));
      Bechamel.Test.make ~name:"sfc header encode+decode"
        (Bechamel.Staged.stage (fun () ->
             ignore
               (Sfc_header.decode (Sfc_header.encode Sfc_header.default) ~off:0)));
    ]
  in
  let run_one test =
    let open Bechamel in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
    in
    let raw = Benchmark.all cfg [ instance ] test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols instance raw
  in
  List.iter
    (fun test ->
      let results = run_one test in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Format.printf "%-44s %12.0f ns/run@." name est
          | _ -> Format.printf "%-44s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Placement solver benchmark: wall time and solution cost per solver   *)
(* and spec size, the three-way anneal head-to-head (incremental        *)
(* move-diff vs full rebuild vs reference oracle), and multi-domain     *)
(* parallel restarts. The results land in BENCH_placement.json so the   *)
(* perf trajectory is machine-readable across PRs.                      *)
(* ------------------------------------------------------------------ *)

(* --smoke (used by CI) shrinks the iteration count: still exercises
   every code path and the identity checks, without the full-length
   timing runs. *)
let smoke = ref false

(* --telemetry adds a third timed mode to the runtime benchmark (fast
   path with Counters instrumentation), prints the registry, and records
   the measured overhead in BENCH_runtime.json — which is then written
   even under --smoke, so CI can archive it. *)
let telemetry = ref false

(* --domains N adds a sharded section to the runtime benchmark: the same
   workload through Runtime.process_batch_parallel for each domain count
   in {1, 2, 4, ..., N}, with per-packet equivalence against the
   sequential run enforced (CI runs --smoke --domains 2). *)
let bench_domains = ref 1

(* --cache adds the exact-match flow-cache section to the runtime
   benchmark: Zipf-skewed flow mixes through the uncached fast path and
   through Engine.Emc, gated on byte-identical outputs, with hit rate
   and ns/pkt per mix recorded in BENCH_runtime.json (CI runs
   --smoke --cache). *)
let bench_cache = ref false

(* --churn adds the live-control-plane section to the runtime benchmark:
   a 10k-op BGP-style trace (FIB add/mod/del + ACL toggles) replayed
   through Runtime.apply_ops on a running sharded engine with the flow
   cache on, op batches interleaved with traffic batches. Reports update
   throughput and the forwarding-rate dip vs a churn-free baseline, and
   gates (exit 1) on the live-applied final state digest matching a
   cold-built runtime's (CI runs --smoke --churn). *)
let bench_churn = ref false

(* --state adds the bounded-state-store section to the runtime
   benchmark, in three gated phases: (1) under-capacity equivalence —
   the mixed workload through Engine.Bounded must be byte-identical to
   No_state; (2) scale — a large population of distinct flows (1M+
   full, 20k smoke) through a classifier->lb->nat->router chain whose
   LB sessions and NAT bindings both live on the store, gating ledger
   occupancy == min(flows, capacity), chip table size <= capacity, and
   a flat-memory ceiling (live heap words after saturation must not
   grow); (3) live re-shard 2 -> 4 -> 1 under traffic, whose migrated
   store union must digest-identical a cold-built runtime's. All three
   exit 1 on breach (CI runs --smoke --state --state-capacity 4096). *)
let bench_state = ref false

(* --state-capacity N sets the per-shard store capacity for the --state
   section (default 65536, the chip session table's max_size — larger
   values are clamped to it so the ledger, not the chip, is the
   bound). *)
let bench_state_capacity = ref 65536

(* --ttl NS sets the store's TTL in logical nanoseconds for the --state
   section (default 0 = no aging; the scale phase never advances the
   clock, so TTL only changes bookkeeping there). *)
let bench_state_ttl = ref 0L

let bench_placement () =
  section "Placement solver benchmark -> BENCH_placement.json";
  let anneal_iterations = if !smoke then 400 else 4000 in
  let specs =
    [
      Asic.Spec.wedge_100b;
      Asic.Spec.tofino_4pipe;
      { Asic.Spec.tofino_4pipe with Asic.Spec.name = "tofino-8pipe"; n_pipelines = 8 };
    ]
  in
  let nfs = [ "A"; "B"; "C"; "D"; "E"; "F" ] in
  let chains =
    [
      Chain.make ~path_id:1 ~name:"full" ~nfs ~weight:0.5 ~exit_port:1 ();
      Chain.make ~path_id:2 ~name:"odd" ~nfs:[ "A"; "C"; "E" ] ~weight:0.3
        ~exit_port:17 ();
      Chain.make ~path_id:3 ~name:"even" ~nfs:[ "B"; "D"; "F" ] ~weight:0.2
        ~exit_port:1 ();
    ]
  in
  let input_of spec =
    {
      Placement.spec;
      resources_of =
        (fun _ -> { P4ir.Resources.zero with P4ir.Resources.stages = 1 });
      chains;
      entry_pipeline = 0;
      pinned = [];
      framework_stages_per_nf = 2;
      framework_stages_fixed = 1;
    }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let anneal =
    Placement.Anneal { iterations = anneal_iterations; seed = 1; initial_temp = 2.0 }
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"benchmark\": \"placement\",\n  \"anneal_iterations\": %d,\n  \"specs\": [\n"
       anneal_iterations);
  List.iteri
    (fun si spec ->
      let input = input_of spec in
      Format.printf "@.%s (%d pipelines)@." spec.Asic.Spec.name
        spec.Asic.Spec.n_pipelines;
      Format.printf "%-12s %12s %10s@." "solver" "wall (ms)" "cost";
      let solvers =
        [ ("naive", Placement.Naive); ("greedy", Placement.Greedy); ("anneal", anneal) ]
        @ (if spec.Asic.Spec.n_pipelines <= 2 then
             [ ("exhaustive", Placement.Exhaustive) ]
           else [])
      in
      let rows =
        List.filter_map
          (fun (name, strategy) ->
            let dt, result = time (fun () -> Placement.solve input strategy) in
            match result with
            | Error e ->
                Format.printf "%-12s failed: %s@." name e;
                None
            | Ok (_, cost) ->
                Format.printf "%-12s %12.2f %10.3f@." name (dt *. 1000.0) cost;
                Some (name, dt, cost))
          solvers
      in
      (* Three-way anneal head-to-head: incremental move-diff (the
         production path), full rebuild with the memoized fast scorer
         (PR-1's path, now the oracle baseline) and full rebuild with
         the uncached reference scorer. Min of 3 runs each: all three
         are deterministic, so run-to-run wall-time spread is
         scheduler/GC noise and the minimum is the cleanest estimate. *)
      let time_min3 f =
        let t1, r = time f in
        let t2, _ = time f in
        let t3, _ = time f in
        (min t1 (min t2 t3), r)
      in
      let incr_s, incremental =
        time_min3 (fun () -> Placement.solve input anneal)
      in
      let fast_s, fast =
        time_min3 (fun () -> Placement.solve_rebuild input anneal)
      in
      let ref_s, reference =
        time_min3 (fun () ->
            Placement.solve_rebuild ~scorer:Placement.Reference input anneal)
      in
      let same a b =
        match (a, b) with
        | Ok (la, ca), Ok (lb, cb) -> la = lb && abs_float (ca -. cb) < 1e-9
        | Error _, Error _ -> true
        | _ -> false
      in
      let costs_equal = same incremental fast && same incremental reference in
      let speedup = if fast_s > 0.0 then ref_s /. fast_s else 0.0 in
      let incr_speedup = if incr_s > 0.0 then fast_s /. incr_s else 0.0 in
      Format.printf
        "anneal incremental=%.2fms rebuild-fast=%.2fms reference=%.2fms \
         incr-speedup=%.1fx fast-speedup=%.1fx identical=%b@."
        (incr_s *. 1000.0) (fast_s *. 1000.0) (ref_s *. 1000.0) incr_speedup
        speedup costs_equal;
      (* Parallel restarts: the full seed sweep on a 4-domain pool. *)
      let restart_domains = 4 in
      let restart_seeds = [ 1; 2; 3; 4; 5; 6 ] in
      let par_s, par =
        time (fun () ->
            Placement.solve_parallel ~iterations:anneal_iterations
              ~domains:restart_domains ~seeds:restart_seeds input)
      in
      let restarts_json =
        match par with
        | Error e ->
            Format.printf "restarts failed: %s@." e;
            Printf.sprintf
              "      \"restarts\": { \"domains\": %d, \"error\": %S }\n"
              restart_domains e
        | Ok p ->
            Format.printf "restarts (%d seeds, %d domains): best=%.3f in %.2fms@."
              (List.length restart_seeds) restart_domains p.Placement.cost
              (par_s *. 1000.0);
            Printf.sprintf
              "      \"restarts\": {\n\
              \        \"domains\": %d,\n\
              \        \"wall_s\": %.6f,\n\
              \        \"best_cost\": %.6f,\n\
              \        \"per_seed\": [\n%s\n\
              \        ]\n\
              \      }\n"
              restart_domains par_s p.Placement.cost
              (String.concat ",\n"
                 (List.map
                    (fun (r : Placement.restart) ->
                      match r.Placement.cost with
                      | Some c ->
                          Printf.sprintf
                            "          { \"seed\": %d, \"cost\": %.6f }"
                            r.Placement.seed c
                      | None ->
                          Printf.sprintf
                            "          { \"seed\": %d, \"cost\": null }"
                            r.Placement.seed)
                    p.Placement.restarts))
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\n      \"spec\": %S,\n      \"n_pipelines\": %d,\n      \"solvers\": [\n%s\n      ],\n      \"anneal_incremental_s\": %.6f,\n      \"anneal_fast_s\": %.6f,\n      \"anneal_reference_s\": %.6f,\n      \"anneal_speedup\": %.2f,\n      \"anneal_incremental_speedup\": %.2f,\n      \"anneal_results_identical\": %b,\n%s    }%s\n"
           spec.Asic.Spec.name spec.Asic.Spec.n_pipelines
           (String.concat ",\n"
              (List.map
                 (fun (name, dt, cost) ->
                   Printf.sprintf
                     "        { \"solver\": %S, \"wall_s\": %.6f, \"cost\": %.6f }"
                     name dt cost)
                 rows))
           incr_s fast_s ref_s speedup incr_speedup costs_equal restarts_json
           (if si < List.length specs - 1 then "," else "")))
    specs;
  Buffer.add_string buf "  ]\n}\n";
  if !smoke then Format.printf "@.--smoke: skipped writing BENCH_placement.json@."
  else begin
    let oc = open_out "BENCH_placement.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Format.printf "@.wrote BENCH_placement.json@."
  end

(* ------------------------------------------------------------------ *)
(* Data-plane throughput benchmark: the same packet workload through    *)
(* the precompiled fast path and the statement-tree reference           *)
(* interpreter, with the batch digest proving both produced             *)
(* byte-identical outputs. Results land in BENCH_runtime.json.          *)
(* ------------------------------------------------------------------ *)

let bench_runtime () =
  section "Runtime throughput benchmark -> BENCH_runtime.json";
  let npkts = if !smoke then 200 else 4000 in
  let flow ~src ~dst ~src_port ~dst_port =
    Netpkt.Pkt.encode
      (Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:00:00:00:00:01")
         ~dst_mac:(mac "02:00:00:00:00:02")
         {
           Netpkt.Flow.src = ip src;
           dst;
           proto = Netpkt.Ipv4.proto_tcp;
           src_port;
           dst_port;
         })
  in
  (* Mixed workload over the Fig. 2 policy: green (classifier-router),
     orange (classifier-vgw-router) and red (the full 5-NF chain through
     the LB, which punts each new flow to the CPU and installs a
     connection entry — so the batch also exercises table growth and the
     CPU round-trip path). *)
  let workload =
    List.init npkts (fun i ->
        let frame =
          match i mod 4 with
          | 0 ->
              flow ~src:"203.0.113.7"
                ~dst:(ip (Printf.sprintf "10.0.3.%d" (1 + (i mod 200))))
                ~src_port:(40000 + (i mod 97)) ~dst_port:443
          | 1 ->
              flow ~src:"203.0.113.8"
                ~dst:(ip (Printf.sprintf "10.0.2.%d" (1 + (i mod 200))))
                ~src_port:(41000 + (i mod 89)) ~dst_port:80
          | 2 ->
              flow ~src:"203.0.113.9" ~dst:Nflib.Catalog.tenant1_vip
                ~src_port:(50000 + (i mod 61)) ~dst_port:80
          | _ ->
              flow ~src:"203.0.113.10" ~dst:(ip "10.0.3.50")
                ~src_port:(42000 + (i mod 127)) ~dst_port:8080
        in
        (0, frame))
  in
  (* The LB handler installs entries statefully, so every timed run gets
     a freshly compiled chip + runtime; min of [runs] for the cleanest
     wall-time estimate. *)
  (* A realistic FIB: 512 /24s + 32 /20s in 172.16.0.0/12, none covering
     the workload's 10.0.0.0/16 destinations — outputs are unchanged, but
     the router lookup runs at production table scale (the reference
     interpreter scans every prefix per packet; the indexed path probes
     one bucket per prefix length). Installed identically in both modes
     before the clock starts. *)
  let fib_extra = 512 + 32 in
  let fib_entry ~prefix_len addr =
    {
      P4ir.Table.priority = 0;
      patterns =
        [
          P4ir.Table.M_lpm
            { value = P4ir.Bitval.of_int ~width:32 addr; prefix_len };
        ];
      action = "route";
      args =
        [
          P4ir.Bitval.of_int ~width:48 0x020000aa0001;
          P4ir.Bitval.of_int ~width:48 0x0200000000fe;
        ];
    }
  in
  let fib_ops =
    let entries =
      List.init 512 (fun i ->
          fib_entry ~prefix_len:24
            ((172 lsl 24)
            lor ((16 + (i lsr 8)) lsl 16)
            lor ((i land 0xff) lsl 8)))
      @ List.init 32 (fun i ->
            fib_entry ~prefix_len:20
              ((172 lsl 24)
              lor ((24 + (i lsr 4)) lsl 16)
              lor ((i land 0xf) lsl 12)))
    in
    List.map
      (fun e -> Ctrl.Table (Nflib.Catalog.routes_table_name, Ctrl.Add e))
      entries
  in
  (* Installed through the typed-op front door — the same path the churn
     trace takes at runtime. *)
  let install_fib compiled =
    match Ctrl.apply_all compiled.Compiler.chip fib_ops with
    | Ok _ -> ()
    | Error e -> failwith ("bench runtime: FIB install failed: " ^ e)
  in
  let engine_for ?(domains = 1) mode =
    { Runtime.Engine.default with Runtime.Engine.exec_mode = mode; domains }
  in
  let run_mode mode =
    let compiled =
      match compile_prototype () with Ok c -> c | Error e -> failwith e
    in
    let rt = Runtime.create ~engine:(engine_for mode) compiled in
    Nflib.Catalog.attach_handlers rt compiled;
    install_fib compiled;
    let t0 = Unix.gettimeofday () in
    let stats = Runtime.process_batch rt workload in
    (Unix.gettimeofday () -. t0, stats)
  in
  let runs = if !smoke then 1 else 3 in
  let time_mode mode =
    let results = List.init runs (fun _ -> run_mode mode) in
    let stats = snd (List.hd results) in
    (List.fold_left (fun acc (dt, _) -> min acc dt) infinity results, stats)
  in
  let fast_s, fast = time_mode Asic.Chip.Fast in
  let ref_s, refr = time_mode Asic.Chip.Reference in
  let fast_c = fast.Runtime.counters and refr_c = refr.Runtime.counters in
  let identical =
    fast.Runtime.digest = refr.Runtime.digest
    && fast.Runtime.emitted = refr.Runtime.emitted
    && fast.Runtime.dropped = refr.Runtime.dropped
    && fast.Runtime.to_cpu = refr.Runtime.to_cpu
    && fast.Runtime.errors = refr.Runtime.errors
    && fast_c.Runtime.Counters.cpu_round_trips
       = refr_c.Runtime.Counters.cpu_round_trips
    && fast_c.Runtime.Counters.recircs = refr_c.Runtime.Counters.recircs
    && fast_c.Runtime.Counters.resubmits = refr_c.Runtime.Counters.resubmits
  in
  (* Spot-check trace-event equality on one chip walk per mode (the
     QCheck suite does this exhaustively on random programs). *)
  let traces_equal =
    let walk mode =
      let compiled =
        match compile_prototype () with Ok c -> c | Error e -> failwith e
      in
      install_fib compiled;
      Asic.Chip.set_exec_mode compiled.Compiler.chip mode;
      match Asic.Chip.inject compiled.Compiler.chip ~in_port:0 (snd (List.hd workload)) with
      | Ok r -> r.Asic.Chip.trace
      | Error e -> failwith e
    in
    walk Asic.Chip.Fast = walk Asic.Chip.Reference
  in
  let rate dt = float_of_int npkts /. dt in
  let ns_per_pkt dt = dt *. 1e9 /. float_of_int npkts in
  let speedup = if fast_s > 0.0 then ref_s /. fast_s else 0.0 in
  (* On divergence: rerun both modes in lockstep with the flight
     recorder on, find the first packet whose outcome differs, and dump
     its journey through each mode (divergence.json) plus the raw frame
     (divergence.pcap) for offline replay. *)
  let dump_divergence () =
    let mk mode =
      let compiled =
        match compile_prototype () with Ok c -> c | Error e -> failwith e
      in
      let rt = Runtime.create ~engine:(engine_for mode) compiled in
      Nflib.Catalog.attach_handlers rt compiled;
      install_fib compiled;
      Runtime.set_telemetry ~ring_capacity:4 rt Telemetry.Level.Journeys;
      rt
    in
    let frt = mk Asic.Chip.Fast and rrt = mk Asic.Chip.Reference in
    let signature rt (in_port, frame) =
      match Runtime.process rt ~in_port frame with
      | Error e -> "error:" ^ e
      | Ok o -> (
          match o.Runtime.verdict with
          | Asic.Chip.Emitted { port; frame } ->
              Printf.sprintf "emitted:%d:%s" port
                (Digest.to_hex (Digest.bytes frame))
          | Asic.Chip.Dropped -> "dropped"
          | Asic.Chip.To_cpu b ->
              "to_cpu:" ^ Digest.to_hex (Digest.bytes b))
    in
    let offender =
      List.find_mapi
        (fun i pkt ->
          let fs = signature frt pkt and rs = signature rrt pkt in
          if String.equal fs rs then None else Some (i, pkt, fs, rs))
        workload
    in
    match offender with
    | None ->
        Format.printf
          "divergence did not reproduce in lockstep replay (stateful \
           interleaving?) - no dump written@."
    | Some (i, (in_port, frame), fs, rs) ->
        let last_journey rt =
          match Runtime.telemetry rt with
          | None -> "null"
          | Some o -> (
              match Telemetry.Ring.last (Observe.ring o) with
              | None -> "null"
              | Some j -> Telemetry.Journey.to_json ~indent:2 j)
        in
        let oc = open_out "divergence.json" in
        Printf.fprintf oc
          "{\n\
          \  \"packet_index\": %d,\n\
          \  \"in_port\": %d,\n\
          \  \"fast_outcome\": %S,\n\
          \  \"reference_outcome\": %S,\n\
          \  \"fast_journey\": %s,\n\
          \  \"reference_journey\": %s\n\
           }\n"
          i in_port fs rs (last_journey frt) (last_journey rrt);
        close_out oc;
        Netpkt.Pcap.write_file "divergence.pcap"
          [ Netpkt.Pcap.packet ~ts_sec:0 ~ts_usec:i frame ];
        Format.printf
          "wrote divergence.json + divergence.pcap (packet %d, fast=%s \
           reference=%s)@."
          i fs rs
  in
  (* The Counters-overhead measurement: fast path with and without
     Counters instrumentation. The two are interleaved (fast, counters,
     fast, counters, ...) and each side takes its min, so a slow window
     on a noisy machine hits both sides instead of biasing whichever
     phase ran second. *)
  let run_counters () =
    let compiled =
      match compile_prototype () with Ok c -> c | Error e -> failwith e
    in
    let rt = Runtime.create compiled in
    Nflib.Catalog.attach_handlers rt compiled;
    install_fib compiled;
    Runtime.set_telemetry rt Telemetry.Level.Counters;
    let t0 = Unix.gettimeofday () in
    let stats = Runtime.process_batch rt workload in
    (Unix.gettimeofday () -. t0, stats, rt)
  in
  let measure_overhead () =
    begin
      let pairs =
        List.init 5 (fun _ -> (run_mode Asic.Chip.Fast, run_counters ()))
      in
      let tele_s =
        List.fold_left
          (fun acc (_, (dt, _, _)) -> min acc dt)
          infinity pairs
      in
      let _, (_, tele_stats, tele_rt) = List.hd pairs in
      let base_s =
        List.fold_left
          (fun acc ((dt, _), _) -> min acc dt)
          fast_s pairs
      in
      let pct = 100.0 *. (tele_s -. base_s) /. base_s in
      let same_outputs = tele_stats.Runtime.digest = fast.Runtime.digest in
      Format.printf
        "%-12s %12.2f %14.0f %12.0f@." "counters" (tele_s *. 1000.0)
        (rate tele_s) (ns_per_pkt tele_s);
      Format.printf
        "counters overhead vs fast: %+.1f%% (budget 5%%), outputs identical=%b@."
        pct same_outputs;
      (match Runtime.telemetry tele_rt with
      | None -> ()
      | Some o ->
          Format.printf "@.telemetry registry after the counters run:@.";
          Format.printf "%t@." (fun ppf -> Observe.pp ppf o (Runtime.chip tele_rt));
          Format.printf "@.as JSON:@.%s@."
            (Observe.json ~indent:2 o (Runtime.chip tele_rt)));
      if not same_outputs then begin
        Format.printf "ERROR: Counters telemetry changed batch outputs!@.";
        exit 1
      end;
      Some (tele_s, base_s, pct)
    end
  in
  Format.printf
    "%d packets (%d green/orange, %d red via LB + CPU), %d-prefix FIB, min of \
     %d runs@."
    npkts (fast.Runtime.packets - (npkts / 4)) (npkts / 4) (fib_extra + 2) runs;
  Format.printf "%-12s %12s %14s %12s@." "mode" "wall (ms)" "pkts/sec" "ns/pkt";
  Format.printf "%-12s %12.2f %14.0f %12.0f@." "fast" (fast_s *. 1000.0)
    (rate fast_s) (ns_per_pkt fast_s);
  Format.printf "%-12s %12.2f %14.0f %12.0f@." "reference" (ref_s *. 1000.0)
    (rate ref_s) (ns_per_pkt ref_s);
  let overhead = if !telemetry then measure_overhead () else None in
  Format.printf
    "speedup=%.1fx identical=%b traces_equal=%b (emitted=%d dropped=%d \
     to_cpu=%d cpu_round_trips=%d recircs=%d digest=%Lx)@."
    speedup identical traces_equal fast.Runtime.emitted fast.Runtime.dropped
    fast.Runtime.to_cpu fast_c.Runtime.Counters.cpu_round_trips
    fast_c.Runtime.Counters.recircs fast.Runtime.digest;
  if not (identical && traces_equal) then begin
    Format.printf "ERROR: fast and reference paths disagree!@.";
    dump_divergence ();
    exit 1
  end;
  if fast.Runtime.error_log <> [] then begin
    Format.printf "first batch errors:@.";
    List.iter
      (fun (port, msg) -> Format.printf "  in_port=%d %s@." port msg)
      fast.Runtime.error_log;
    if fast.Runtime.suppressed > 0 then
      Format.printf "  ... and %d more suppressed (first %d kept)@."
        fast.Runtime.suppressed
        (List.length fast.Runtime.error_log)
  end;
  (* Allocation accounting: total Gc words (minor + major - promoted)
     allocated per packet, per engine config, over an untimed
     steady-state pass. The warm pass absorbs compulsory first-flow work
     (LB punts install connection entries, the EMC fills), so the
     measured pass is the pure data-plane allocation rate. Words rather
     than bytes: stable across word sizes; allocation counts are
     deterministic, so one measured pass suffices. Sequential configs
     only — Gc.quick_stat is per-domain under OCaml 5, so a sharded
     run's worker allocations would be invisible here. *)
  (* Measured on this machine: ~2620 w/pkt at --smoke scale (200 pkts),
     ~3800 at full scale (4000 pkts, bigger live session tables). The
     budget covers both with ~25% headroom. *)
  let alloc_budget_words = 4800.0 in
  let alloc_results =
    let e = engine_for Asic.Chip.Fast in
    let configs =
      [
        ("fast/off", e);
        ( "fast/counters",
          { e with Runtime.Engine.telemetry = Telemetry.Level.Counters } );
        ( "fast/journeys",
          { e with Runtime.Engine.telemetry = Telemetry.Level.Journeys } );
        ("reference/off", engine_for Asic.Chip.Reference);
        ( "fast/emc",
          { e with Runtime.Engine.cache = Runtime.Engine.Emc { capacity = 65536 } }
        );
      ]
    in
    Format.printf
      "@.allocations per packet (Gc words, steady-state pass of %d pkts):@."
      npkts;
    Format.printf "%-16s %12s %12s %12s@." "config" "minor w/pkt" "major w/pkt"
      "total w/pkt";
    List.map
      (fun (name, engine) ->
        let compiled =
          match compile_prototype () with Ok c -> c | Error e -> failwith e
        in
        let rt = Runtime.create ~engine compiled in
        Nflib.Catalog.attach_handlers rt compiled;
        install_fib compiled;
        ignore (Runtime.process_batch rt workload);
        Gc.full_major ();
        let s0 = Gc.quick_stat () in
        ignore (Runtime.process_batch rt workload);
        let s1 = Gc.quick_stat () in
        let per w = w /. float_of_int npkts in
        let minor = per (s1.Gc.minor_words -. s0.Gc.minor_words) in
        let major =
          per
            (s1.Gc.major_words -. s1.Gc.promoted_words
            -. (s0.Gc.major_words -. s0.Gc.promoted_words))
        in
        Format.printf "%-16s %12.1f %12.1f %12.1f@." name minor major
          (minor +. major);
        (name, minor, major, minor +. major))
      configs
  in
  let fast_alloc_total =
    match List.find_opt (fun (n, _, _, _) -> n = "fast/off") alloc_results with
    | Some (_, _, _, total) -> total
    | None -> 0.0
  in
  Format.printf "fast/off budget: %.0f w/pkt (measured %.1f)@."
    alloc_budget_words fast_alloc_total;
  (* --domains: the same workload sharded over k worker domains (each
     one a private chip replica), gated on per-packet equivalence with
     the sequential run. Latency sums are float and order-dependent
     across shards, so the gate compares int counters and per-packet
     outcome signatures only. *)
  let signature_of = function
    | Error e -> "error:" ^ e
    | Ok (o : Runtime.outcome) -> (
        match o.Runtime.verdict with
        | Asic.Chip.Emitted { port; frame } ->
            Printf.sprintf "emitted:%d:%s" port
              (Digest.to_hex (Digest.bytes frame))
        | Asic.Chip.Dropped -> "dropped"
        | Asic.Chip.To_cpu b -> "to_cpu:" ^ Digest.to_hex (Digest.bytes b))
  in
  let parallel_results =
    if !bench_domains <= 1 then []
    else begin
      Format.printf "@.sharded data plane (process_batch_parallel):@.";
      Format.printf "%-12s %12s %14s %12s@." "domains" "wall (ms)" "pkts/sec"
        "ns/pkt";
      let fresh_runtime ~domains =
        let compiled =
          match compile_prototype () with Ok c -> c | Error e -> failwith e
        in
        let rt =
          Runtime.create ~engine:(engine_for ~domains Asic.Chip.Fast) compiled
        in
        Nflib.Catalog.attach_handlers rt compiled;
        install_fib compiled;
        rt
      in
      let oracle = Array.make npkts "" in
      let rt = fresh_runtime ~domains:1 in
      let seq =
        Runtime.process_batch
          ~each:(fun i r -> oracle.(i) <- signature_of r)
          rt workload
      in
      let seq_c = seq.Runtime.counters in
      let domain_counts =
        List.filter (fun d -> d <= !bench_domains) [ 1; 2; 4 ]
        @ if List.mem !bench_domains [ 1; 2; 4 ] then [] else [ !bench_domains ]
      in
      List.map
        (fun d ->
          (* Timed runs use exactly the sequential discipline: a fresh
             compile + FIB each run, no per-packet callback inside the
             clocked region, min of [runs]. (The old code timed a single
             run with the signature collector live, which made domains:1
             spuriously incomparable with the sequential row.) *)
          let dt =
            List.fold_left
              (fun acc _ ->
                let rt = fresh_runtime ~domains:d in
                let t0 = Unix.gettimeofday () in
                ignore (Runtime.process_batch_parallel rt workload);
                min acc (Unix.gettimeofday () -. t0))
              infinity (List.init runs Fun.id)
          in
          (* Equivalence is checked on a separate, untimed run. *)
          let rt = fresh_runtime ~domains:d in
          let sigs = Array.make npkts "" in
          let stats =
            Runtime.process_batch_parallel
              ~each:(fun i r -> sigs.(i) <- signature_of r)
              rt workload
          in
          let c = stats.Runtime.counters in
          let same =
            stats.Runtime.emitted = seq.Runtime.emitted
            && stats.Runtime.dropped = seq.Runtime.dropped
            && stats.Runtime.to_cpu = seq.Runtime.to_cpu
            && stats.Runtime.errors = seq.Runtime.errors
            && c.Runtime.Counters.cpu_round_trips
               = seq_c.Runtime.Counters.cpu_round_trips
            && c.Runtime.Counters.recircs = seq_c.Runtime.Counters.recircs
            && c.Runtime.Counters.resubmits = seq_c.Runtime.Counters.resubmits
            && sigs = oracle
          in
          Format.printf "%-12d %12.2f %14.0f %12.0f%s@." d (dt *. 1000.0)
            (rate dt) (ns_per_pkt dt)
            (if same then "" else "  DIVERGED");
          if not same then begin
            let mismatches = ref 0 in
            Array.iteri
              (fun i s ->
                if not (String.equal s oracle.(i)) then begin
                  incr mismatches;
                  if !mismatches <= 3 then
                    Format.printf
                      "  packet %d: sequential=%s domains-%d=%s@." i oracle.(i)
                      d s
                end)
              sigs;
            if !mismatches > 0 then
              Format.printf "  (%d per-packet mismatches)@." !mismatches
          end;
          (d, dt, same))
        domain_counts
    end
  in
  if not (List.for_all (fun (_, _, same) -> same) parallel_results) then begin
    Format.printf "ERROR: sharded runs diverge from the sequential data plane!@.";
    exit 1
  end;
  (* domains:1 is process_batch by construction, so under the unified
     timing discipline its wall time must track the sequential fast row.
     A >10% gap either way means the harness is measuring two different
     things again — fail loudly rather than publish inconsistent
     numbers. (Skipped under --smoke: 200-packet timings are too noisy
     to hold a 10% band.) *)
  (match List.find_opt (fun (d, _, _) -> d = 1) parallel_results with
  | Some (_, d1_s, _) when not !smoke ->
      let drift = abs_float (d1_s -. fast_s) /. fast_s in
      Format.printf
        "domains:1 vs sequential fast: %.2fms vs %.2fms (drift %.1f%%)@."
        (d1_s *. 1000.0) (fast_s *. 1000.0) (100.0 *. drift);
      if drift > 0.10 then begin
        Format.printf
          "ERROR: domains:1 diverges from the sequential fast path by more \
           than 10%% - timing disciplines are inconsistent!@.";
        exit 1
      end
  | _ -> ());
  (* --cache: Zipf-skewed flow mixes through the uncached fast path vs
     Engine.Emc. Each flow's first packet misses (and fills the cache);
     every later packet of a cached flow replays the memoized verdict.
     The workload is green-path traffic (classifier-router, no recircs,
     no CPU), i.e. the chain shape the EMC is built for; skew decides
     how much of the traffic is repeat flows. Outputs are digest-gated:
     a cached run must be byte-identical to the uncached oracle.

     Steady-state discipline, symmetric for both modes: each run gets a
     fresh compile + FIB, processes the workload once untimed (the warm
     pass — compulsory first-packet misses are a transient), then
     clocks a second identical pass. The reported hit rate is the timed
     pass's, so capacity pressure (evictions under LRU when the flow
     count outgrows the cache) shows up as a sub-100% rate. *)
  let cache_results =
    if not !bench_cache then []
    else begin
      let zipf_exponent = 1.1 in
      let capacity = 65536 in
      Format.printf
        "@.exact-match flow cache (Zipf %.1f flow mixes, capacity %d):@."
        zipf_exponent capacity;
      Format.printf "%-10s %9s %12s %12s %9s %9s %9s@." "flows" "packets"
        "uncached ms" "cached ms" "hit rate" "speedup" "identical";
      (* Truncated-Zipf CDF + binary search: rank r has mass ~ r^-s. *)
      let zipf_cdf n =
        let cdf = Array.make n 0.0 in
        let acc = ref 0.0 in
        for i = 0 to n - 1 do
          acc := !acc +. (1.0 /. (float_of_int (i + 1) ** zipf_exponent));
          cdf.(i) <- !acc
        done;
        let total = !acc in
        Array.map (fun x -> x /. total) cdf
      in
      let sample st cdf =
        let u = Random.State.float st 1.0 in
        let lo = ref 0 and hi = ref (Array.length cdf - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if cdf.(mid) < u then lo := mid + 1 else hi := mid
        done;
        !lo
      in
      (* Flow rank -> a unique green-path 5-tuple (src bytes + port carry
         the rank; dst stays inside the green /24). *)
      let green_frame id =
        Netpkt.Pkt.encode
          (Netpkt.Pkt.tcp_flow ~src_mac:(mac "02:00:00:00:00:01")
             ~dst_mac:(mac "02:00:00:00:00:02")
             {
               Netpkt.Flow.src =
                 Netpkt.Ip4.of_octets 203
                   ((id lsr 16) land 0xff)
                   ((id lsr 8) land 0xff)
                   (id land 0xff);
               dst = ip (Printf.sprintf "10.0.3.%d" (1 + (id mod 200)));
               proto = Netpkt.Ipv4.proto_tcp;
               src_port = 1024 + (id mod 50000);
               dst_port = 443;
             })
      in
      let mixes =
        if !smoke then [ (200, 2000) ]
        else [ (1_000, 60_000); (100_000, 240_000); (1_000_000, 480_000) ]
      in
      let results =
        List.map
          (fun (flows, n) ->
            let cdf = zipf_cdf flows in
            let st = Random.State.make [| 0x5eed; flows |] in
            let mix_workload =
              List.init n (fun _ -> (0, green_frame (sample st cdf)))
            in
            let run engine =
              let compiled =
                match compile_prototype () with
                | Ok c -> c
                | Error e -> failwith e
              in
              let rt = Runtime.create ~engine compiled in
              Nflib.Catalog.attach_handlers rt compiled;
              install_fib compiled;
              ignore (Runtime.process_batch rt mix_workload);
              let snapshot () =
                match Runtime.flow_cache rt with
                | Some c ->
                    let s = Flow_cache.stats c in
                    (s.Flow_cache.hits, s.Flow_cache.misses)
                | None -> (0, 0)
              in
              let h0, m0 = snapshot () in
              let t0 = Unix.gettimeofday () in
              let stats = Runtime.process_batch rt mix_workload in
              let dt = Unix.gettimeofday () -. t0 in
              let h1, m1 = snapshot () in
              let hr =
                let h = h1 - h0 and m = m1 - m0 in
                if h + m = 0 then 0.0
                else float_of_int h /. float_of_int (h + m)
              in
              (dt, stats, hr)
            in
            let time_min engine =
              let results = List.init runs (fun _ -> run engine) in
              let _, stats, hr = List.hd results in
              ( List.fold_left (fun acc (dt, _, _) -> min acc dt) infinity
                  results,
                stats,
                hr )
            in
            let u_s, u_stats, _ = time_min (engine_for Asic.Chip.Fast) in
            let c_s, c_stats, hit_rate =
              time_min
                {
                  (engine_for Asic.Chip.Fast) with
                  Runtime.Engine.cache = Runtime.Engine.Emc { capacity };
                }
            in
            let identical =
              u_stats.Runtime.digest = c_stats.Runtime.digest
              && u_stats.Runtime.emitted = c_stats.Runtime.emitted
              && u_stats.Runtime.dropped = c_stats.Runtime.dropped
              && u_stats.Runtime.to_cpu = c_stats.Runtime.to_cpu
              && u_stats.Runtime.errors = c_stats.Runtime.errors
            in
            let speedup = if c_s > 0.0 then u_s /. c_s else 0.0 in
            Format.printf "%-10d %9d %12.2f %12.2f %8.1f%% %8.1fx %9b@." flows
              n (u_s *. 1000.0) (c_s *. 1000.0) (100.0 *. hit_rate) speedup
              identical;
            if not identical then begin
              Format.printf
                "ERROR: cached outputs diverge from the uncached fast path!@.";
              exit 1
            end;
            (flows, n, u_s, c_s, hit_rate, speedup, identical))
          mixes
      in
      Format.printf
        "(every cached run digest-matched its uncached oracle; both modes \
         run an untimed warm pass first and clock the second pass, so the \
         hit rate is the steady state's)@.";
      results
    end
  in
  (* --churn: the live control plane under load. A 10k-op BGP-style
     trace (Catalog.fib_churn_trace: FIB announce/re-announce/withdraw
     plus ACL toggles) is cut into batches and replayed through
     Runtime.apply_ops on a running sharded engine with the flow cache
     on, one op batch between every two traffic batches — the paper's
     runtime-churn story: table updates land between packet batches,
     never mid-packet, and the data plane never stops. Reported: update
     throughput (ops/s over the op-apply wall time) and the
     forwarding-rate dip vs an identical churn-free traffic schedule.
     Gated (exit 1, also under --smoke — this is the CI divergence
     gate): the live-applied final state must digest-identical a
     cold-built runtime that applied the same trace with no traffic in
     flight, and both must forward a probe batch identically. *)
  let churn_results =
    if not !bench_churn then None
    else begin
      let n_ops = 10_000 in
      let ops_per_batch = if !smoke then 200 else 50 in
      let pkts_per_batch = if !smoke then 50 else 200 in
      let churn_domains = max 2 !bench_domains in
      let capacity = 65536 in
      let engine =
        {
          (engine_for ~domains:churn_domains Asic.Chip.Fast) with
          Runtime.Engine.cache = Runtime.Engine.Emc { capacity };
        }
      in
      let trace = Nflib.Catalog.fib_churn_trace ~n:n_ops () in
      let op_batches =
        let rec split acc cur k = function
          | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
          | op :: rest ->
              if k = ops_per_batch then
                split (List.rev cur :: acc) [ op ] 1 rest
              else split acc (op :: cur) (k + 1) rest
        in
        split [] [] 0 trace
      in
      let n_batches = List.length op_batches in
      (* Traffic during churn: the bench workload mix, cycled into one
         slice per op batch. *)
      let traffic = Array.of_list workload in
      let traffic_batch b =
        List.init pkts_per_batch (fun i ->
            traffic.((b * pkts_per_batch + i) mod npkts))
      in
      let fresh_rt () =
        let compiled =
          match compile_prototype () with Ok c -> c | Error e -> failwith e
        in
        let rt = Runtime.create ~engine compiled in
        Nflib.Catalog.attach_handlers rt compiled;
        install_fib compiled;
        rt
      in
      Format.printf
        "@.live control plane (--churn): %d ops in %d batches of <=%d, %d \
         pkts of traffic between batches, domains=%d, cache on:@."
        n_ops n_batches ops_per_batch pkts_per_batch churn_domains;
      (* Churn-free baseline: the identical traffic schedule, no ops. *)
      let rt_base = fresh_rt () in
      let base_traffic_s = ref 0.0 in
      for b = 0 to n_batches - 1 do
        let batch = traffic_batch b in
        let t0 = Unix.gettimeofday () in
        ignore (Runtime.process_batch_parallel rt_base batch);
        base_traffic_s := !base_traffic_s +. (Unix.gettimeofday () -. t0)
      done;
      (* Live run: one op batch through the front door, then one traffic
         batch, interleaved across the whole trace. *)
      let rt_live = fresh_rt () in
      let op_s = ref 0.0 and live_traffic_s = ref 0.0 in
      let applied = ref 0 in
      List.iteri
        (fun b ops ->
          let t0 = Unix.gettimeofday () in
          (match Runtime.apply_ops rt_live ops with
          | Ok n -> applied := !applied + n
          | Error e -> failwith ("bench runtime --churn: op failed: " ^ e));
          op_s := !op_s +. (Unix.gettimeofday () -. t0);
          let batch = traffic_batch b in
          let t0 = Unix.gettimeofday () in
          ignore (Runtime.process_batch_parallel rt_live batch);
          live_traffic_s := !live_traffic_s +. (Unix.gettimeofday () -. t0))
        op_batches;
      (* Cold oracle: a fresh runtime, the whole trace applied with no
         traffic in flight. The live-applied control-plane state must be
         byte-identical (the digest covers every table's match keys,
         actions and args, and every register's nonzero cells). *)
      let rt_cold = fresh_rt () in
      (match Runtime.apply_ops rt_cold trace with
      | Ok _ -> ()
      | Error e -> failwith ("bench runtime --churn: cold apply failed: " ^ e));
      let live_digest = Ctrl.state_digest (Runtime.chip rt_live) in
      let cold_digest = Ctrl.state_digest (Runtime.chip rt_cold) in
      let state_match = Int64.equal live_digest cold_digest in
      (* And the two must forward identically from here on: the same
         probe batch under the same sharding, digest-compared. *)
      let probe = workload in
      let p_live = Runtime.process_batch_parallel rt_live probe in
      let p_cold = Runtime.process_batch_parallel rt_cold probe in
      let probe_match = p_live.Runtime.digest = p_cold.Runtime.digest in
      let ops_per_sec =
        if !op_s > 0.0 then float_of_int !applied /. !op_s else 0.0
      in
      let n_traffic = n_batches * pkts_per_batch in
      let ns_live = !live_traffic_s *. 1e9 /. float_of_int n_traffic in
      let ns_base = !base_traffic_s *. 1e9 /. float_of_int n_traffic in
      let dip_pct =
        if ns_base > 0.0 then 100.0 *. (ns_live -. ns_base) /. ns_base else 0.0
      in
      Format.printf
        "applied %d ops in %.2fms (%.0f ops/s); traffic %.0f ns/pkt under \
         churn vs %.0f ns/pkt baseline (dip %+.1f%%)@."
        !applied (!op_s *. 1000.0) ops_per_sec ns_live ns_base dip_pct;
      Format.printf
        "final state: live=%Lx cold=%Lx match=%b; probe digests match=%b@."
        live_digest cold_digest state_match probe_match;
      if not (state_match && probe_match) then begin
        Format.printf
          "ERROR: live-applied churn state diverges from the cold-built \
           oracle!@.";
        exit 1
      end;
      Some
        ( !applied,
          n_batches,
          ops_per_sec,
          !op_s,
          n_traffic,
          ns_live,
          ns_base,
          dip_pct,
          churn_domains,
          capacity,
          state_match,
          probe_match )
    end
  in
  (* --state: the bounded state store at benchmark scale, three gated
     phases (all exit 1 on breach, including under --smoke):
       1. under-capacity equivalence — the mixed workload through
          Engine.Bounded at a capacity no flow population reaches must
          be byte-identical to No_state (the ledger is pure
          bookkeeping until the bound bites);
       2. scale — a large population of distinct flows (1M+ full, 20k
          smoke) through a classifier->lb->nat->router chain whose LB
          sessions AND NAT bindings live on the store: ledger occupancy
          must land exactly on min(flows, capacity), the chip session/
          binding tables must hold exactly the ledger's live set (every
          LRU eviction Del'd its chip entry), and the live heap must
          stay flat after the store saturates — the million-flow story
          with bounded memory;
       3. live re-shard 2 -> 4 -> 1 with traffic between reconfigures:
          the migrated store union must digest-identical a cold-built
          single-shard runtime that saw the same flows.
     Returns the pre-formatted BENCH_runtime.json fragment. *)
  let state_results =
    if not !bench_state then None
    else begin
      let capacity = min !bench_state_capacity 65536 in
      if capacity <> !bench_state_capacity then
        Format.printf
          "note: --state-capacity clamped to 65536 (the chip session \
           table's max_size)@.";
      let ttl_ns = !bench_state_ttl in
      let with_state ?(domains = 1) ?cache st =
        let e = engine_for ~domains Asic.Chip.Fast in
        let e =
          match cache with
          | Some cap ->
              { e with Runtime.Engine.cache = Runtime.Engine.Emc { capacity = cap } }
          | None -> e
        in
        { e with Runtime.Engine.state = st }
      in
      Format.printf
        "@.bounded state store (--state): capacity=%d ttl=%Ldns@." capacity
        ttl_ns;
      (* Phase 1: under-capacity equivalence on the mixed bench
         workload. Capacity pinned at the chip table bound — way above
         the workload's flow count — so the only difference between the
         two runs is the ledger bookkeeping itself. *)
      let run_with engine =
        let compiled =
          match compile_prototype () with Ok c -> c | Error e -> failwith e
        in
        let rt = Runtime.create ~engine compiled in
        Nflib.Catalog.attach_handlers rt compiled;
        install_fib compiled;
        Runtime.process_batch rt workload
      in
      let off = run_with (with_state Runtime.Engine.No_state) in
      let on =
        run_with
          (with_state (Runtime.Engine.Bounded { capacity = 65536; ttl_ns }))
      in
      let equiv =
        off.Runtime.digest = on.Runtime.digest
        && off.Runtime.emitted = on.Runtime.emitted
        && off.Runtime.dropped = on.Runtime.dropped
        && off.Runtime.to_cpu = on.Runtime.to_cpu
        && off.Runtime.errors = on.Runtime.errors
      in
      Format.printf
        "under-capacity equivalence: digest off=%Lx on=%Lx identical=%b@."
        off.Runtime.digest on.Runtime.digest equiv;
      if not equiv then begin
        Format.printf
          "ERROR: Bounded state diverges from No_state under capacity!@.";
        exit 1
      end;
      (* Phase 2: scale. Both stateful NFs in one chain; every flow is a
         distinct source address, so the LB session ledger (5-tuple) and
         the NAT binding ledger (source ip) each grow one entry per flow
         until the bound. *)
      let bounded = Runtime.Engine.Bounded { capacity; ttl_ns } in
      let scale_rt engine =
        let rules =
          [
            {
              Nflib.Classifier.dst_prefix =
                Netpkt.Ip4.prefix_of_string_exn "10.0.1.0/24";
              proto = None;
              path_id = 10;
              tenant = 1;
            };
          ]
        in
        let registry =
          ("classifier", Nflib.Classifier.create rules)
          :: ( Nflib.Nat.name,
               Nflib.Nat.create_dynamic ~max_size:(max 8192 capacity) )
          :: List.filter
               (fun (n, _) -> n <> "classifier" && n <> Nflib.Nat.name)
               (Nflib.Catalog.registry ())
        in
        let chains =
          [
            Chain.make ~path_id:10 ~name:"stateful"
              ~nfs:[ "classifier"; "lb"; "nat"; "router" ]
              ~weight:1.0 ~exit_port:1 ();
          ]
        in
        let compiled =
          match
            Compiler.compile
              (Compiler.default_input ~registry ~chains
                 ~strategy:Placement.Greedy ())
          with
          | Ok c -> c
          | Error e -> failwith ("bench runtime --state: compile failed: " ^ e)
        in
        let rt = Runtime.create ~engine compiled in
        Nflib.Catalog.attach_handlers rt compiled;
        (rt, compiled)
      in
      (* f's 24 low bits spread over the last three source octets: every
         flow a distinct source, good to 16M flows. *)
      let scale_frame f =
        flow
          ~src:
            (Printf.sprintf "10.%d.%d.%d"
               (64 + ((f lsr 16) land 0x3f))
               ((f lsr 8) land 0xff) (f land 0xff))
          ~dst:Nflib.Catalog.tenant1_vip
          ~src_port:(40000 + (f mod 16384))
          ~dst_port:80
      in
      let scale_flows = if !smoke then 20_000 else 1_000_000 in
      let rt_scale, compiled_scale = scale_rt (with_state bounded) in
      let batch_size = if !smoke then 2_048 else 10_000 in
      (* Heap checkpoint once the store is well saturated (3x capacity
         flows seen): from here to the end of the run live words must
         not grow — flat memory under unbounded flow arrival. *)
      let saturate_at = 3 * capacity in
      let checkpoint = ref None in
      let emitted = ref 0 and errs = ref 0 and flows_done = ref 0 in
      let t0 = Unix.gettimeofday () in
      while !flows_done < scale_flows do
        let n = min batch_size (scale_flows - !flows_done) in
        let base = !flows_done in
        let batch = List.init n (fun i -> (0, scale_frame (base + i))) in
        let stats = Runtime.process_batch rt_scale batch in
        emitted := !emitted + stats.Runtime.emitted;
        errs := !errs + stats.Runtime.errors;
        flows_done := !flows_done + n;
        if !checkpoint = None && !flows_done >= saturate_at then begin
          Gc.full_major ();
          checkpoint := Some ((Gc.stat ()).Gc.live_words, !flows_done)
        end
      done;
      let scale_wall = Unix.gettimeofday () -. t0 in
      Gc.full_major ();
      let final_live = (Gc.stat ()).Gc.live_words in
      let stores = Runtime.state_stores rt_scale in
      let occupancy =
        let tbl = Hashtbl.create 8 in
        Array.iter
          (fun s ->
            List.iter
              (fun (name, occ, _) ->
                let prev =
                  Option.value ~default:0 (Hashtbl.find_opt tbl name)
                in
                Hashtbl.replace tbl name (prev + occ))
              (State_store.per_table s))
          stores;
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
      in
      let evictions =
        Array.fold_left
          (fun acc s ->
            List.fold_left
              (fun acc (_, _, st) -> acc + st.State_store.evictions)
              acc (State_store.per_table s))
          0 stores
      in
      let expected = min scale_flows capacity in
      let occupancy_ok =
        occupancy <> []
        && List.for_all
             (fun (name, occ) ->
               if
                 name = Nflib.Lb.state_table_name
                 || name = Nflib.Nat.state_table_name
               then occ = expected
               else occ <= capacity)
             occupancy
      in
      let chip_entries nf tbl =
        match
          Asic.Chip.find_table compiled_scale.Compiler.chip
            (Compose.nf_table_name ~nf tbl)
        with
        | Some t -> P4ir.Table.size t
        | None -> -1
      in
      let lb_chip = chip_entries Nflib.Lb.name Nflib.Lb.table_name in
      let nat_chip = chip_entries Nflib.Nat.name Nflib.Nat.table_name in
      let chip_ok = lb_chip = expected && nat_chip = expected in
      let mem_ok, ckpt_words, ckpt_flows =
        match !checkpoint with
        | None -> (true, 0, 0) (* store never saturated: nothing to gate *)
        | Some (w, fl) ->
            let slack = max (w / 10) 1_000_000 in
            (final_live <= w + slack, w, fl)
      in
      let words_mb w = float_of_int w *. 8.0 /. 1048576.0 in
      Format.printf
        "scale: %d flows in %.2fs (%.0f pkts/s), emitted=%d errors=%d, \
         evictions=%d@."
        scale_flows scale_wall
        (float_of_int scale_flows /. scale_wall)
        !emitted !errs evictions;
      List.iter
        (fun (name, occ) ->
          Format.printf "  ledger %-14s entries=%d/%d@." name occ capacity)
        occupancy;
      Format.printf
        "  chip lb=%d nat=%d (expect %d); heap %.1f MB at %d flows -> %.1f \
         MB at %d flows@."
        lb_chip nat_chip expected (words_mb ckpt_words) ckpt_flows
        (words_mb final_live) scale_flows;
      if not (occupancy_ok && chip_ok) then begin
        Format.printf
          "ERROR: state occupancy breached the bound (ledger or chip)!@.";
        exit 1
      end;
      if not mem_ok then begin
        Format.printf
          "ERROR: live heap grew past the flat-memory ceiling after the \
           store saturated!@.";
        exit 1
      end;
      if !errs > 0 then begin
        Format.printf "ERROR: scale run produced packet errors!@.";
        exit 1
      end;
      (* Phase 3: live re-shard under traffic vs a cold-built oracle,
         flow cache on throughout. Kept under capacity so LRU victims —
         which legitimately differ per shard layout — don't enter the
         comparison. *)
      let n1 = max 8 (min (if !smoke then 300 else 2000) (capacity / 4)) in
      let mk domains = fst (scale_rt (with_state ~domains ~cache:4096 bounded)) in
      let slice a b = List.init (b - a) (fun i -> (0, scale_frame (a + i))) in
      let live = mk 2 in
      ignore (Runtime.process_batch_parallel live (slice 0 n1));
      Runtime.configure live
        { (Runtime.engine live) with Runtime.Engine.domains = 4 };
      ignore (Runtime.process_batch_parallel live (slice n1 (2 * n1)));
      Runtime.configure live
        { (Runtime.engine live) with Runtime.Engine.domains = 1 };
      ignore (Runtime.process_batch_parallel live (slice (2 * n1) (3 * n1)));
      let cold = mk 1 in
      ignore (Runtime.process_batch_parallel cold (slice 0 (3 * n1)));
      let d_live = State_store.digest (Runtime.state_stores live) in
      let d_cold = State_store.digest (Runtime.state_stores cold) in
      let reshard_ok = Int64.equal d_live d_cold in
      Format.printf
        "re-shard 2->4->1 over %d flows: live=%Lx cold=%Lx match=%b@."
        (3 * n1) d_live d_cold reshard_ok;
      if not reshard_ok then begin
        Format.printf
          "ERROR: live re-sharded store diverges from the cold-built \
           oracle!@.";
        exit 1
      end;
      let occ_rows =
        String.concat ", "
          (List.map
             (fun (name, occ) -> Printf.sprintf "\"%s\": %d" name occ)
             occupancy)
      in
      Some
        (Printf.sprintf
           "  \"state\": { \"capacity\": %d, \"ttl_ns\": %Ld, \
            \"equivalence_identical\": %b,\n\
           \             \"scale\": { \"flows\": %d, \"wall_s\": %.6f, \
            \"pkts_per_sec\": %.0f, \"evictions\": %d,\n\
           \                        \"occupancy\": { %s }, \"chip_lb\": %d, \
            \"chip_nat\": %d,\n\
           \                        \"live_words_saturated\": %d, \
            \"live_words_final\": %d, \"flat_memory\": %b },\n\
           \             \"reshard\": { \"flows\": %d, \"digest_live\": \
            \"%Lx\", \"digest_cold\": \"%Lx\", \"match\": %b } },\n"
           capacity ttl_ns equiv scale_flows scale_wall
           (float_of_int scale_flows /. scale_wall)
           evictions occ_rows lb_chip nat_chip ckpt_words final_live mem_ok
           (3 * n1) d_live d_cold reshard_ok)
    end
  in
  (* --telemetry / --domains / --cache / --churn keep the JSON even
     under --smoke: the overhead / scaling / churn numbers are the point
     and CI archives the file. *)
  if
    !smoke
    && (not !telemetry)
    && !bench_domains <= 1
    && (not !bench_cache)
    && (not !bench_churn)
    && not !bench_state
  then
    Format.printf "@.--smoke: skipped writing BENCH_runtime.json@."
  else begin
    let overhead_json =
      match overhead with
      | None -> ""
      | Some (tele_s, base_s, pct) ->
          Printf.sprintf
            "  \"overhead\": { \"counters_wall_s\": %.6f, \"fast_wall_s\": \
             %.6f,\n\
            \                \"counters_ns_per_pkt\": %.1f, \"pct_vs_fast\": \
             %.2f },\n"
            tele_s base_s (ns_per_pkt tele_s) pct
    in
    let allocs_json =
      let rows =
        List.map
          (fun (name, minor, major, total) ->
            Printf.sprintf
              "    { \"config\": %S, \"minor_words_per_pkt\": %.1f, \
               \"major_words_per_pkt\": %.1f, \"words_per_pkt\": %.1f }"
              name minor major total)
          alloc_results
      in
      Printf.sprintf
        "  \"allocations\": { \"budget_fast_words_per_pkt\": %.0f, \
         \"configs\": [\n\
         %s\n\
        \  ] },\n"
        alloc_budget_words
        (String.concat ",\n" rows)
    in
    let parallel_json =
      match parallel_results with
      | [] -> ""
      | results ->
          let rows =
            List.map
              (fun (d, dt, same) ->
                Printf.sprintf
                  "    { \"domains\": %d, \"wall_s\": %.6f, \"pkts_per_sec\": \
                   %.0f, \"ns_per_pkt\": %.1f, \"identical\": %b }"
                  d dt (rate dt) (ns_per_pkt dt) same)
              results
          in
          Printf.sprintf "  \"parallel\": [\n%s\n  ],\n"
            (String.concat ",\n" rows)
    in
    let cache_json =
      match cache_results with
      | [] -> ""
      | results ->
          let rows =
            List.map
              (fun (flows, n, u_s, c_s, hit_rate, speedup, identical) ->
                Printf.sprintf
                  "    { \"flows\": %d, \"packets\": %d,\n\
                  \      \"uncached\": { \"wall_s\": %.6f, \"pkts_per_sec\": \
                   %.0f, \"ns_per_pkt\": %.1f },\n\
                  \      \"cached\": { \"wall_s\": %.6f, \"pkts_per_sec\": \
                   %.0f, \"ns_per_pkt\": %.1f },\n\
                  \      \"hit_rate\": %.4f, \"speedup\": %.2f, \
                   \"identical\": %b }"
                  flows n u_s
                  (float_of_int n /. u_s)
                  (u_s *. 1e9 /. float_of_int n)
                  c_s
                  (float_of_int n /. c_s)
                  (c_s *. 1e9 /. float_of_int n)
                  hit_rate speedup identical)
              results
          in
          Printf.sprintf
            "  \"cache\": { \"zipf\": 1.1, \"capacity\": 65536, \"mixes\": [\n\
             %s\n\
            \  ] },\n"
            (String.concat ",\n" rows)
    in
    let churn_json =
      match churn_results with
      | None -> ""
      | Some
          ( applied,
            n_batches,
            ops_per_sec,
            op_s,
            n_traffic,
            ns_live,
            ns_base,
            dip_pct,
            churn_domains,
            capacity,
            state_match,
            probe_match ) ->
          Printf.sprintf
            "  \"churn\": { \"ops\": %d, \"op_batches\": %d, \
             \"ops_per_sec\": %.0f, \"update_wall_s\": %.6f,\n\
            \             \"traffic\": { \"packets\": %d, \
             \"ns_per_pkt_live\": %.1f, \"ns_per_pkt_baseline\": %.1f, \
             \"dip_pct\": %.2f },\n\
            \             \"domains\": %d, \"cache_capacity\": %d,\n\
            \             \"state_digest_match\": %b, \
             \"probe_digest_match\": %b },\n"
            applied n_batches ops_per_sec op_s n_traffic ns_live ns_base
            dip_pct churn_domains capacity state_match probe_match
    in
    let state_json = Option.value ~default:"" state_results in
    let oc = open_out "BENCH_runtime.json" in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": \"runtime\",\n\
      \  \"packets\": %d,\n\
      \  \"fib_prefixes\": %d,\n\
      \  \"runs\": %d,\n\
      \  \"smoke\": %b,\n\
      \  \"fast\": { \"wall_s\": %.6f, \"pkts_per_sec\": %.0f, \"ns_per_pkt\": %.1f },\n\
      \  \"reference\": { \"wall_s\": %.6f, \"pkts_per_sec\": %.0f, \"ns_per_pkt\": %.1f },\n\
       %s\
       %s\
      \  \"speedup\": %.2f,\n\
      \  \"identical\": %b,\n\
      \  \"traces_equal\": %b,\n\
      \  \"stats\": { \"emitted\": %d, \"dropped\": %d, \"to_cpu\": %d, \"errors\": %d,\n\
      \              \"cpu_round_trips\": %d, \"recircs\": %d, \"resubmits\": %d,\n\
      \              \"digest\": \"%Lx\" }\n\
       }\n"
      npkts (fib_extra + 2) runs !smoke fast_s (rate fast_s) (ns_per_pkt fast_s)
      ref_s (rate ref_s) (ns_per_pkt ref_s) overhead_json
      (allocs_json ^ parallel_json ^ cache_json ^ churn_json ^ state_json)
      speedup
      identical traces_equal fast.Runtime.emitted fast.Runtime.dropped
      fast.Runtime.to_cpu fast.Runtime.errors
      fast_c.Runtime.Counters.cpu_round_trips fast_c.Runtime.Counters.recircs
      fast_c.Runtime.Counters.resubmits fast.Runtime.digest;
    close_out oc;
    Format.printf "@.wrote BENCH_runtime.json@."
  end;
  (* Allocation regression gate (CI, runs in every mode including plain
     --smoke): allocation counts are deterministic, so unlike the timing
     gates this one needs no smoke slack — the budget already carries
     the headroom. A fast/off steady-state pass allocating past it means
     someone put allocation on the uninstrumented hot path. *)
  if fast_alloc_total > alloc_budget_words then begin
    Format.printf
      "ERROR: fast/off allocates %.1f words/pkt, over the %.0f budget@."
      fast_alloc_total alloc_budget_words;
    exit 1
  end;
  (* Smoke-mode regression gate (CI): a Counters overhead way past the
     5% budget fails the run. The smoke threshold is looser (15%)
     because 200-packet timings are noisy. *)
  match overhead with
  | Some (_, _, pct) when !smoke && pct > 15.0 ->
      Format.printf "ERROR: Counters overhead %.1f%% exceeds the 15%% smoke gate@."
        pct;
      exit 1
  | _ -> ()

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8a", fig8a);
    ("fig8b", fig8b);
    ("fig9", fig9);
    ("table1", table1);
    ("validation", validation);
    ("motivation", motivation);
    ("ablation-compose", ablation_compose);
    ("ablation-placement", ablation_placement);
    ("ablation-loopback", ablation_loopback);
    ("related-work", related_work);
    ("ablation-cluster", ablation_cluster);
    ("placement", bench_placement);
    ("runtime", bench_runtime);
    ("micro", microbench);
  ]

let () =
  let argv = List.tl (Array.to_list Sys.argv) in
  let rec strip_flags acc = function
    | [] -> List.rev acc
    | "--smoke" :: rest ->
        smoke := true;
        strip_flags acc rest
    | "--telemetry" :: rest ->
        telemetry := true;
        strip_flags acc rest
    | "--cache" :: rest ->
        bench_cache := true;
        strip_flags acc rest
    | "--churn" :: rest ->
        bench_churn := true;
        strip_flags acc rest
    | "--state" :: rest ->
        bench_state := true;
        strip_flags acc rest
    | "--state-capacity" :: n :: rest ->
        (match int_of_string_opt n with
        | Some c when c >= 1 -> bench_state_capacity := c
        | _ ->
            Format.printf "invalid --state-capacity value %S@." n;
            exit 2);
        strip_flags acc rest
    | "--ttl" :: n :: rest ->
        (match Int64.of_string_opt n with
        | Some t when t >= 0L -> bench_state_ttl := t
        | _ ->
            Format.printf "invalid --ttl value %S@." n;
            exit 2);
        strip_flags acc rest
    | "--domains" :: n :: rest ->
        (match int_of_string_opt n with
        | Some d when d >= 1 -> bench_domains := d
        | _ ->
            Format.printf "invalid --domains value %S@." n;
            exit 2);
        strip_flags acc rest
    | a :: rest -> strip_flags (a :: acc) rest
  in
  let requested = strip_flags [] argv in
  let to_run =
    match requested with
    | [] -> experiments
    | names ->
        List.filter_map
          (fun n ->
            match List.assoc_opt n experiments with
            | Some f -> Some (n, f)
            | None ->
                Format.printf "unknown experiment %S (have: %s)@." n
                  (String.concat ", " (List.map fst experiments));
                None)
          names
  in
  List.iter (fun (_, f) -> f ()) to_run
